// Tests for the two-phase dynamic shift register: structure, clocked
// logic-level shifting (charge storage between phases), and the
// master-phase timing path.
#include <gtest/gtest.h>

#include "delay/rctree.h"
#include "gen/generators.h"
#include "netlist/checks.h"
#include "switchsim/simulator.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "util/contracts.h"

namespace sldm {
namespace {

TEST(ShiftRegister, Structure) {
  const GeneratedCircuit g = shift_register(Style::kNmos, 3);
  EXPECT_TRUE(all_ok(check(g.netlist)));
  // Per stage: 2 passes + 2 inverters (2 devices each nMOS) = 6.
  EXPECT_EQ(g.netlist.device_count(), 18u);
  EXPECT_TRUE(g.netlist.node(g.output).is_output);
  EXPECT_THROW(shift_register(Style::kNmos, 0), ContractViolation);
}

/// Drives a full two-phase cycle: phi1 captures into the master, phi2
/// transfers into the slave.
void clock_cycle(SwitchSimulator& sim, NodeId phi1, NodeId phi2) {
  sim.set_input(phi1, true);
  sim.set_input(phi2, false);
  sim.settle();
  sim.set_input(phi1, false);
  sim.settle();
  sim.set_input(phi2, true);
  sim.settle();
  sim.set_input(phi2, false);
  sim.settle();
}

TEST(ShiftRegister, ShiftsDataThroughTwoStages) {
  const GeneratedCircuit g = shift_register(Style::kNmos, 2);
  const NodeId phi1 = *g.netlist.find_node("phi1");
  const NodeId phi2 = *g.netlist.find_node("phi2");
  const NodeId q0 = *g.netlist.find_node("q0");
  const NodeId q1 = *g.netlist.find_node("q1");

  SwitchSimulator sim(g.netlist);
  // Cycle 1: shift in a 1.
  sim.set_input(g.input, true);
  clock_cycle(sim, phi1, phi2);
  EXPECT_EQ(sim.value(q0), Logic::k1);

  // Cycle 2: shift in a 0; the 1 moves to stage 2.
  sim.set_input(g.input, false);
  clock_cycle(sim, phi1, phi2);
  EXPECT_EQ(sim.value(q0), Logic::k0);
  EXPECT_EQ(sim.value(q1), Logic::k1);

  // Cycle 3: another 0 flushes the 1 out.
  clock_cycle(sim, phi1, phi2);
  EXPECT_EQ(sim.value(q1), Logic::k0);
}

TEST(ShiftRegister, HoldsValueWithBothClocksLow) {
  const GeneratedCircuit g = shift_register(Style::kNmos, 1);
  const NodeId phi1 = *g.netlist.find_node("phi1");
  const NodeId phi2 = *g.netlist.find_node("phi2");
  const NodeId q0 = *g.netlist.find_node("q0");

  SwitchSimulator sim(g.netlist);
  sim.set_input(g.input, true);
  clock_cycle(sim, phi1, phi2);
  ASSERT_EQ(sim.value(q0), Logic::k1);

  // Change the data with both clocks off: the stored value must hold
  // (dynamic storage on the pass-gate nodes).
  sim.set_input(g.input, false);
  sim.settle();
  EXPECT_EQ(sim.value(q0), Logic::k1);
  // The slave's input node holds charge only.
  const NodeId s0 = *g.netlist.find_node("s0");
  EXPECT_EQ(sim.strength(s0), Strength::kCharged);
}

TEST(ShiftRegister, MasterPhaseTimingPathExists) {
  // With phi1 pinned high (master transparent), a data edge must
  // propagate to the master inverter output.
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = shift_register(Style::kNmos, 1);
  AnalyzerOptions opts;
  opts.extract.fixed_values[g.high_inputs[0]] = true;   // phi1
  opts.extract.fixed_values[g.low_inputs[0]] = false;   // phi2
  TimingAnalyzer an(g.netlist, tech, model, opts);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const NodeId mq0 = *g.netlist.find_node("mq0");
  const auto fall = an.arrival(mq0, Transition::kFall);
  ASSERT_TRUE(fall.has_value());
  EXPECT_GT(fall->time, 0.0);
  // The slave is isolated by phi2 = 0: no arrival at q0.
  const NodeId q0 = *g.netlist.find_node("q0");
  EXPECT_FALSE(an.arrival(q0, Transition::kRise).has_value());
  EXPECT_FALSE(an.arrival(q0, Transition::kFall).has_value());
}

}  // namespace
}  // namespace sldm
