// Determinism of the component-partitioned timing pipeline: for every
// circuit generator, stage extraction and arrival propagation with
// threads=N must be bit-identical to threads=1 (which in turn is the
// reference sequential order).  Also covers the thread pool and the CCC
// partition the pipeline is built on, and the analyzer's run-once /
// reset() contract.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "delay/rctree.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "timing/ccc.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace sldm {
namespace {

bool same_stage(const TimingStage& a, const TimingStage& b) {
  return a.source == b.source && a.destination == b.destination &&
         a.output_dir == b.output_dir && a.path == b.path &&
         a.trigger == b.trigger &&
         a.trigger_gate_dir == b.trigger_gate_dir &&
         a.trigger_is_release == b.trigger_is_release &&
         a.source_triggered == b.source_triggered;
}

/// One circuit per generator in src/gen (both styles where the
/// structure differs: ratioed nMOS exercises release stages).
std::vector<GeneratedCircuit> generator_suite() {
  std::vector<GeneratedCircuit> out;
  out.push_back(inverter_chain(Style::kCmos, 8, 3));
  out.push_back(inverter_chain(Style::kNmos, 6, 2));
  out.push_back(nand_chain(Style::kCmos, 3));
  out.push_back(nor_chain(Style::kNmos, 3));
  out.push_back(pass_chain(Style::kNmos, 5));
  out.push_back(barrel_shifter(Style::kCmos, 4));
  out.push_back(manchester_carry(Style::kNmos, 6));
  out.push_back(precharged_bus(Style::kCmos, 5));
  out.push_back(driver_chain(Style::kCmos, 4, 2.5, 80.0));
  out.push_back(address_decoder(Style::kCmos, 3));
  out.push_back(pla(Style::kCmos, 4, 5, 3, 0x1234));
  out.push_back(shift_register(Style::kCmos, 3));
  out.push_back(sram_read_column(Style::kNmos, 6));
  out.push_back(random_logic(Style::kCmos, 6, 10, 0xABCD));
  return out;
}

const Tech& tech_for(const GeneratedCircuit& g) {
  static const Tech nmos = nmos4();
  static const Tech cmos = cmos3();
  return g.style == Style::kNmos ? nmos : cmos;
}

TEST(ParallelTiming, StagesBitIdenticalAcrossThreadCounts) {
  const RcTreeModel model;
  for (const GeneratedCircuit& g : generator_suite()) {
    AnalyzerOptions seq;
    seq.threads = 1;
    TimingAnalyzer a1(g.netlist, tech_for(g), model, seq);
    for (const int threads : {2, 4, ThreadPool::hardware_threads()}) {
      AnalyzerOptions par;
      par.threads = threads;
      TimingAnalyzer aN(g.netlist, tech_for(g), model, par);
      ASSERT_EQ(a1.stages().size(), aN.stages().size())
          << g.name << " threads=" << threads;
      for (std::size_t i = 0; i < a1.stages().size(); ++i) {
        ASSERT_TRUE(same_stage(a1.stages()[i], aN.stages()[i]))
            << g.name << " threads=" << threads << " stage " << i;
      }
    }
  }
}

TEST(ParallelTiming, ArrivalsBitIdenticalAcrossThreadCounts) {
  const RcTreeModel model;
  for (const GeneratedCircuit& g : generator_suite()) {
    AnalyzerOptions seq;
    seq.threads = 1;
    TimingAnalyzer a1(g.netlist, tech_for(g), model, seq);
    a1.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
    a1.run();
    AnalyzerOptions par;
    par.threads = 4;
    TimingAnalyzer a4(g.netlist, tech_for(g), model, par);
    a4.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
    a4.run();

    for (NodeId n : g.netlist.node_ids()) {
      for (Transition dir : {Transition::kRise, Transition::kFall}) {
        const auto i1 = a1.arrival(n, dir);
        const auto i4 = a4.arrival(n, dir);
        ASSERT_EQ(i1.has_value(), i4.has_value()) << g.name;
        if (!i1) continue;
        // Bitwise equality, not tolerance: the merge must reproduce the
        // sequential stage order exactly.
        EXPECT_EQ(i1->time, i4->time) << g.name;
        EXPECT_EQ(i1->slope, i4->slope) << g.name;
        EXPECT_EQ(i1->from_node, i4->from_node) << g.name;
        EXPECT_EQ(i1->from_dir, i4->from_dir) << g.name;
        EXPECT_EQ(i1->via_stage, i4->via_stage) << g.name;
      }
    }
    const auto w1 = a1.worst_arrival(/*outputs_only=*/true);
    const auto w4 = a4.worst_arrival(/*outputs_only=*/true);
    ASSERT_EQ(w1.has_value(), w4.has_value()) << g.name;
    if (w1) {
      EXPECT_EQ(w1->node, w4->node) << g.name;
      EXPECT_EQ(w1->dir, w4->dir) << g.name;
      EXPECT_EQ(w1->time, w4->time) << g.name;
    }
  }
}

TEST(ParallelTiming, WholeTestsuiteSeedSlopeAllInputs) {
  // Full-suite flavor: every input seeded both directions, stats
  // consistent between thread counts.
  const RcTreeModel model;
  const GeneratedCircuit g = random_logic(Style::kCmos, 5, 8, 0x77);
  AnalyzerOptions seq;
  AnalyzerOptions par;
  par.threads = 4;
  TimingAnalyzer a1(g.netlist, tech_for(g), model, seq);
  TimingAnalyzer a4(g.netlist, tech_for(g), model, par);
  a1.add_all_input_events(1e-9);
  a4.add_all_input_events(1e-9);
  a1.run();
  a4.run();
  EXPECT_EQ(a1.stats().stage_count, a4.stats().stage_count);
  EXPECT_EQ(a1.stats().ccc_count, a4.stats().ccc_count);
  EXPECT_EQ(a1.stats().stages_per_ccc, a4.stats().stages_per_ccc);
  EXPECT_EQ(a1.stats().stage_evaluations, a4.stats().stage_evaluations);
  EXPECT_EQ(a1.stats().worklist_pushes, a4.stats().worklist_pushes);
  EXPECT_EQ(a1.stats().arrival_updates, a4.stats().arrival_updates);
  EXPECT_EQ(a4.stats().threads, 4);
}

TEST(ParallelTiming, StatsPhasesPopulated) {
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 6, 2);
  TimingAnalyzer an(g.netlist, tech_for(g), model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const AnalyzerStats& st = an.stats();
  EXPECT_GT(st.stage_count, 0u);
  EXPECT_GT(st.ccc_count, 0u);
  EXPECT_EQ(st.stages_per_ccc.size(), st.ccc_count);
  std::size_t sum = 0;
  for (std::size_t s : st.stages_per_ccc) sum += s;
  EXPECT_EQ(sum, st.stage_count);
  EXPECT_GE(st.extract_seconds, 0.0);
  EXPECT_GE(st.propagate_seconds, 0.0);
  EXPECT_GT(st.stage_evaluations, 0u);
  EXPECT_GT(st.worklist_pushes, 0u);
  EXPECT_GT(st.arrival_updates, 0u);
}

TEST(Analyzer, RunTwiceThrowsClearError) {
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 2, 1);
  TimingAnalyzer an(g.netlist, tech_for(g), model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  EXPECT_THROW(an.run(), Error);
  EXPECT_THROW(an.add_input_event(g.input, Transition::kFall, 0.0, 1e-9),
               Error);
  EXPECT_THROW(an.add_all_input_events(1e-9), Error);
}

TEST(Analyzer, ResetAllowsReanalysis) {
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 3, 1);
  TimingAnalyzer an(g.netlist, tech_for(g), model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const auto first = an.worst_arrival(false);
  ASSERT_TRUE(first.has_value());

  an.reset();
  // Opposite-direction analysis after reset: old arrivals are gone.
  an.add_input_event(g.input, Transition::kFall, 0.0, 1e-9);
  an.run();
  const NodeId s1 = *g.netlist.find_node("s1");
  EXPECT_TRUE(an.arrival(s1, Transition::kRise).has_value());
  EXPECT_FALSE(an.arrival(s1, Transition::kFall).has_value())
      << "stale pre-reset arrival leaked through reset()";

  // And the same analysis repeated after reset matches a fresh run.
  an.reset();
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const auto again = an.worst_arrival(false);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(first->node, again->node);
  EXPECT_EQ(first->time, again->time);
}

TEST(Ccc, PartitionCoversChannelNodesDisjointly) {
  for (const GeneratedCircuit& g : generator_suite()) {
    const CccPartition ccc(g.netlist);
    std::set<std::uint32_t> seen;
    for (std::size_t c = 0; c < ccc.count(); ++c) {
      for (NodeId n : ccc.members(c)) {
        EXPECT_TRUE(seen.insert(n.value()).second)
            << g.name << ": node in two components";
        EXPECT_EQ(ccc.component_of(n), c) << g.name;
        EXPECT_FALSE(g.netlist.is_rail(n)) << g.name;
        EXPECT_FALSE(g.netlist.channels_at(n).empty()) << g.name;
      }
    }
    for (NodeId n : g.netlist.node_ids()) {
      const bool partitioned =
          ccc.component_of(n) != CccPartition::kNone;
      const bool expected = !g.netlist.is_rail(n) &&
                            !g.netlist.channels_at(n).empty();
      EXPECT_EQ(partitioned, expected) << g.name;
    }
  }
}

TEST(Ccc, ChannelConnectedNodesShareAComponent) {
  const GeneratedCircuit g = pass_chain(Style::kNmos, 4);
  const CccPartition ccc(g.netlist);
  // Every internal node of the pass chain is channel-connected.
  const std::size_t c = ccc.component_of(*g.netlist.find_node("p1"));
  ASSERT_NE(c, CccPartition::kNone);
  for (int i = 2; i <= 4; ++i) {
    EXPECT_EQ(ccc.component_of(
                  *g.netlist.find_node("p" + std::to_string(i))),
              c);
  }
}

TEST(ThreadPool, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, TaskExceptionRethrownFromWait) {
  for (const int threads : {1, 3}) {
    ThreadPool pool(threads);
    for (int i = 0; i < 5; ++i) {
      pool.submit([i] {
        if (i == 3) throw Error("boom");
      });
    }
    EXPECT_THROW(pool.wait(), Error) << "threads=" << threads;
    // The pool stays usable after an exception.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
  }
}

}  // namespace
}  // namespace sldm
