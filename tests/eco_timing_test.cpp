// The incremental (ECO) timing contract: after any sequence of netlist
// edits, TimingAnalyzer::update() must leave the analyzer bit-identical
// to one constructed fresh over the mutated netlist and run from the
// same input events -- same stage list, same arrivals (time, slope, and
// predecessor provenance), same critical paths.  The fuzz test below
// drives every generator in src/gen through randomized edit batches
// (device resizes, capacitance changes, flow annotations, device adds
// with fresh nodes, value pinning) at 1 and 4 extraction threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "delay/rctree.h"
#include "gen/generators.h"
#include "netlist/changes.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "timing/ccc.h"
#include "util/error.h"

namespace sldm {
namespace {

bool same_stage(const TimingStage& a, const TimingStage& b) {
  return a.source == b.source && a.destination == b.destination &&
         a.output_dir == b.output_dir && a.path == b.path &&
         a.trigger == b.trigger &&
         a.trigger_gate_dir == b.trigger_gate_dir &&
         a.trigger_is_release == b.trigger_is_release &&
         a.source_triggered == b.source_triggered;
}

/// One circuit per generator in src/gen (mirrors parallel_timing_test).
std::vector<GeneratedCircuit> generator_suite() {
  std::vector<GeneratedCircuit> out;
  out.push_back(inverter_chain(Style::kCmos, 8, 3));
  out.push_back(inverter_chain(Style::kNmos, 6, 2));
  out.push_back(nand_chain(Style::kCmos, 3));
  out.push_back(nor_chain(Style::kNmos, 3));
  out.push_back(pass_chain(Style::kNmos, 5));
  out.push_back(barrel_shifter(Style::kCmos, 4));
  out.push_back(manchester_carry(Style::kNmos, 6));
  out.push_back(precharged_bus(Style::kCmos, 5));
  out.push_back(driver_chain(Style::kCmos, 4, 2.5, 80.0));
  out.push_back(address_decoder(Style::kCmos, 3));
  out.push_back(pla(Style::kCmos, 4, 5, 3, 0x1234));
  out.push_back(shift_register(Style::kCmos, 3));
  out.push_back(sram_read_column(Style::kNmos, 6));
  out.push_back(random_logic(Style::kCmos, 6, 10, 0xABCD));
  return out;
}

const Tech& tech_for(const GeneratedCircuit& g) {
  static const Tech nmos = nmos4();
  static const Tech cmos = cmos3();
  return g.style == Style::kNmos ? nmos : cmos;
}

/// Deterministic splitmix64 stream (no <random> so runs are identical
/// across standard libraries).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) {
    return static_cast<std::size_t>(next() % n);
  }

 private:
  std::uint64_t state_;
};

/// Applies one random edit; returns false if no applicable target was
/// found (the caller just draws again).
bool random_edit(Netlist& nl, Rng& rng, NodeId protect, int* new_nodes) {
  if (nl.device_count() == 0) return false;
  const DeviceId d(static_cast<std::uint32_t>(rng.below(nl.device_count())));
  const NodeId n(static_cast<std::uint32_t>(rng.below(nl.node_count())));
  switch (rng.below(8)) {
    case 0:
      nl.set_width(d, nl.device(d).width * (rng.below(2) ? 2.0 : 0.5));
      return true;
    case 1:
      nl.set_length(d, nl.device(d).length * (rng.below(2) ? 1.5 : 0.75));
      return true;
    case 2:
      nl.set_capacitance(n, static_cast<double>(rng.below(200)) * 1e-15);
      return true;
    case 3:
      nl.add_cap(n, static_cast<double>(rng.below(50)) * 1e-15);
      return true;
    case 4: {
      static const Flow kFlows[] = {Flow::kBidirectional,
                                    Flow::kSourceToDrain,
                                    Flow::kDrainToSource};
      nl.set_flow(d, kFlows[rng.below(3)]);
      return true;
    }
    case 5: {  // add a device, sometimes onto a brand-new node
      const Transistor& t = nl.device(d);
      const NodeId gate = n;
      const NodeId source = t.source;
      NodeId drain = NodeId::invalid();
      if (rng.below(3) == 0) {
        drain = nl.add_node("eco_n" + std::to_string((*new_nodes)++));
      } else {
        drain = NodeId(static_cast<std::uint32_t>(rng.below(nl.node_count())));
        if (drain == source) return false;
        if (nl.is_rail(drain) && nl.is_rail(source)) return false;
      }
      const TransistorType type =
          nl.device(d).type;  // style-consistent by construction
      nl.add_transistor(type, gate, source, drain, 4e-6, 2e-6);
      return true;
    }
    case 6: {  // pin a node to a value
      if (n == protect || nl.is_rail(n)) return false;
      nl.set_fixed(n, rng.below(2) != 0);
      return true;
    }
    default: {  // free a pinned node
      if (nl.node(n).fixed < 0) return false;
      nl.set_fixed(n, std::nullopt);
      return true;
    }
  }
}

/// Runs a fresh analyzer over `nl`; nullopt if it reports a loop.
std::optional<TimingAnalyzer> fresh_run(const Netlist& nl, const Tech& tech,
                                        const DelayModel& model,
                                        const AnalyzerOptions& opts,
                                        NodeId input) {
  TimingAnalyzer fresh(nl, tech, model, opts);
  fresh.add_input_event(input, Transition::kRise, 0.0, 1e-9);
  try {
    fresh.run();
  } catch (const Error&) {
    return std::nullopt;
  }
  return fresh;
}

void expect_equivalent(const Netlist& nl, const TimingAnalyzer& inc,
                       const TimingAnalyzer& fresh, const std::string& tag) {
  ASSERT_EQ(inc.stages().size(), fresh.stages().size()) << tag;
  for (std::size_t i = 0; i < inc.stages().size(); ++i) {
    ASSERT_TRUE(same_stage(inc.stages()[i], fresh.stages()[i]))
        << tag << " stage " << i;
  }
  for (NodeId n : nl.all_nodes()) {
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      const auto a = inc.arrival(n, dir);
      const auto b = fresh.arrival(n, dir);
      ASSERT_EQ(a.has_value(), b.has_value())
          << tag << " node " << nl.node(n).name << ' ' << to_string(dir);
      if (!a) continue;
      ASSERT_EQ(a->time, b->time) << tag << ' ' << nl.node(n).name;
      ASSERT_EQ(a->slope, b->slope) << tag << ' ' << nl.node(n).name;
      ASSERT_EQ(a->from_node, b->from_node) << tag << ' ' << nl.node(n).name;
      ASSERT_EQ(a->from_dir, b->from_dir) << tag << ' ' << nl.node(n).name;
      ASSERT_EQ(a->via_stage, b->via_stage) << tag << ' ' << nl.node(n).name;
    }
  }
  const auto wi = inc.worst_arrival(/*outputs_only=*/false);
  const auto wf = fresh.worst_arrival(/*outputs_only=*/false);
  ASSERT_EQ(wi.has_value(), wf.has_value()) << tag;
  if (wi) {
    ASSERT_EQ(wi->node, wf->node) << tag;
    ASSERT_EQ(wi->dir, wf->dir) << tag;
    ASSERT_EQ(wi->time, wf->time) << tag;
    const auto pi = inc.critical_path(wi->node, wi->dir);
    const auto pf = fresh.critical_path(wf->node, wf->dir);
    ASSERT_EQ(pi.size(), pf.size()) << tag;
    for (std::size_t i = 0; i < pi.size(); ++i) {
      ASSERT_EQ(pi[i].node, pf[i].node) << tag << " path step " << i;
      ASSERT_EQ(pi[i].dir, pf[i].dir) << tag << " path step " << i;
      ASSERT_EQ(pi[i].time, pf[i].time) << tag << " path step " << i;
      ASSERT_EQ(pi[i].slope, pf[i].slope) << tag << " path step " << i;
      ASSERT_EQ(pi[i].description, pf[i].description)
          << tag << " path step " << i;
    }
  }
}

TEST(EcoTiming, UpdateBitIdenticalToRebuildUnderRandomEdits) {
  const RcTreeModel model;
  for (const int threads : {1, 4}) {
    for (const GeneratedCircuit& g : generator_suite()) {
      Netlist nl = g.netlist;  // mutable working copy
      AnalyzerOptions opts;
      opts.threads = threads;
      // Headroom over the default loop guard: update() and a rebuild
      // count arrival improvements along different schedules, so only
      // genuine loops may trip the limit in either.
      opts.max_updates_per_arrival = 512;

      TimingAnalyzer inc(nl, tech_for(g), model, opts);
      inc.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
      inc.run();

      Rng rng(0xC0FFEE ^ (static_cast<std::uint64_t>(threads) << 32) ^
              std::hash<std::string>{}(g.name));
      int new_nodes = 0;
      for (int step = 0; step < 10; ++step) {
        const std::size_t edits = 1 + rng.below(4);
        for (std::size_t e = 0; e < edits;) {
          if (random_edit(nl, rng, g.input, &new_nodes)) ++e;
        }
        const std::string tag = g.name + " threads=" +
                                std::to_string(threads) + " step=" +
                                std::to_string(step);
        bool inc_looped = false;
        try {
          inc.update();
        } catch (const Error&) {
          inc_looped = true;
        }
        const auto fresh =
            fresh_run(nl, tech_for(g), model, opts, g.input);
        ASSERT_EQ(inc_looped, !fresh.has_value())
            << tag << ": loop detection diverged between update() and "
                      "a full rebuild";
        if (inc_looped) break;  // analyzer state is unspecified now
        expect_equivalent(nl, inc, *fresh, tag);
      }
    }
  }
}

TEST(EcoTiming, UpdateIsNoOpWhenSynced) {
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 4, 1);
  TimingAnalyzer an(g.netlist, tech_for(g), model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const auto before = an.worst_arrival(false);
  an.update();  // no edits recorded: must be a fast-path no-op
  EXPECT_EQ(an.stats().incremental_updates, 0u);
  const auto after = an.worst_arrival(false);
  ASSERT_TRUE(before && after);
  EXPECT_EQ(before->time, after->time);
}

TEST(EcoTiming, SingleDeviceEditDirtiesOneComponentAndReusesTheRest) {
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 8, 3);
  Netlist nl = g.netlist;
  TimingAnalyzer an(nl, tech_for(g), model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const std::size_t total_stages = an.stages().size();

  // Resizing one inverter's pull-down dirties the components its
  // terminals touch; the rest of the chain is carried over verbatim.
  nl.set_width(DeviceId(0), nl.device(DeviceId(0)).width * 2.0);
  an.update();
  const AnalyzerStats& st = an.stats();
  EXPECT_EQ(st.incremental_updates, 1u);
  EXPECT_GE(st.dirty_cccs, 1u);
  EXPECT_LT(st.dirty_cccs, st.ccc_count);
  EXPECT_GT(st.reused_stages, 0u);
  EXPECT_GT(st.reextracted_stages, 0u);
  EXPECT_EQ(st.reused_stages + st.reextracted_stages, an.stages().size());
  EXPECT_EQ(an.stages().size(), total_stages);  // resize adds no stages
  EXPECT_GT(st.frontier_keys, 0u);
}

TEST(EcoTiming, CccUpdateMatchesFreshPartition) {
  for (const GeneratedCircuit& g : generator_suite()) {
    Netlist nl = g.netlist;
    CccPartition ccc(nl);
    const std::uint64_t since = nl.revision();

    Rng rng(0xDECAF ^ std::hash<std::string>{}(g.name));
    int new_nodes = 0;
    for (int e = 0; e < 8;) {
      if (random_edit(nl, rng, g.input, &new_nodes)) ++e;
    }
    const auto dirty = ccc.update(nl, nl.changes(), since);
    const CccPartition fresh(nl);

    ASSERT_EQ(ccc.count(), fresh.count()) << g.name;
    for (NodeId n : nl.all_nodes()) {
      EXPECT_EQ(ccc.component_of(n), fresh.component_of(n))
          << g.name << " node " << nl.node(n).name;
    }
    for (std::size_t c = 0; c < ccc.count(); ++c) {
      EXPECT_EQ(ccc.members(c), fresh.members(c)) << g.name;
      EXPECT_EQ(ccc.device_count(c), fresh.device_count(c)) << g.name;
    }
    // Dirty ids are valid, ascending, and unique.
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      EXPECT_LT(dirty[i], ccc.count()) << g.name;
      if (i > 0) {
        EXPECT_LT(dirty[i - 1], dirty[i]) << g.name;
      }
    }
  }
}

TEST(EcoTiming, DeviceAddMergesComponents) {
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 4, 1);
  Netlist nl = g.netlist;
  CccPartition ccc(nl);
  const std::uint64_t since = nl.revision();
  ASSERT_GE(ccc.count(), 2u);

  // Bridge the first two inverter outputs with a pass transistor: their
  // components must merge, exactly as a fresh partition sees it.
  const NodeId s1 = *nl.find_node("s1");
  const NodeId s2 = *nl.find_node("s2");
  ASSERT_NE(ccc.component_of(s1), ccc.component_of(s2));
  nl.add_transistor(TransistorType::kNEnhancement, g.input, s1, s2, 4e-6,
                    2e-6);
  ccc.update(nl, nl.changes(), since);
  const CccPartition fresh(nl);
  EXPECT_EQ(ccc.component_of(s1), ccc.component_of(s2));
  ASSERT_EQ(ccc.count(), fresh.count());
  for (NodeId n : nl.all_nodes()) {
    EXPECT_EQ(ccc.component_of(n), fresh.component_of(n));
  }
}

TEST(EcoTiming, StaleAnalyzerRefusesToRunOrSeed) {
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 3, 1);
  Netlist nl = g.netlist;
  TimingAnalyzer an(nl, tech_for(g), model);
  nl.set_width(DeviceId(0), 8e-6);
  EXPECT_THROW(an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9),
               Error);
  EXPECT_THROW(an.add_all_input_events(1e-9), Error);
  EXPECT_THROW(an.run(), Error);
  an.update();  // structure-only update before any run(): re-syncs
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  TimingAnalyzer fresh(nl, tech_for(g), model);
  fresh.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  fresh.run();
  expect_equivalent(nl, an, fresh, "structure-only update");
}

TEST(EcoTiming, RoleChangeRequiresRebuild) {
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 3, 1);
  Netlist nl = g.netlist;
  TimingAnalyzer an(nl, tech_for(g), model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  nl.mark_input("s1");
  EXPECT_THROW(an.update(), Error);
}

TEST(EcoTiming, StatsAccumulateAcrossRunResetAndTrackSplicedStages) {
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 8, 3);
  Netlist nl = g.netlist;
  TimingAnalyzer an(nl, tech_for(g), model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();

  const AnalyzerStats first = an.stats();  // snapshot, not the view
  EXPECT_GT(first.stage_evaluations, 0u);
  EXPECT_GT(first.worklist_pushes, 0u);
  EXPECT_GT(first.arrival_updates, 0u);
  EXPECT_GT(first.propagate_seconds, 0.0);

  // reset() discards arrivals but keeps the extraction; the propagation
  // counters keep accumulating over the second run.
  an.reset();
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const AnalyzerStats second = an.stats();
  EXPECT_GT(second.stage_evaluations, first.stage_evaluations);
  EXPECT_GT(second.worklist_pushes, first.worklist_pushes);
  EXPECT_GT(second.arrival_updates, first.arrival_updates);
  EXPECT_EQ(second.stage_count, first.stage_count);
  EXPECT_EQ(second.extract_seconds, first.extract_seconds);

  // An edit batch that both resizes devices and grows the netlist; the
  // per-CCC census must describe the spliced stage list exactly.
  nl.set_width(DeviceId(0), nl.device(DeviceId(0)).width * 2.0);
  const NodeId s4 = *nl.find_node("s4");
  const NodeId tap = nl.add_node("stats_tap");
  nl.add_transistor(TransistorType::kNEnhancement, g.input, s4, tap, 4e-6,
                    2e-6);
  an.update();

  const AnalyzerStats& st = an.stats();
  EXPECT_GT(st.stage_evaluations, second.stage_evaluations);
  EXPECT_EQ(st.incremental_updates, 1u);
  EXPECT_EQ(st.stage_count, an.stages().size());
  EXPECT_EQ(st.ccc_count, an.components().count());
  ASSERT_EQ(st.stages_per_ccc.size(), st.ccc_count);
  std::vector<std::size_t> census(st.ccc_count, 0);
  for (const TimingStage& ts : an.stages()) {
    ++census[an.components().component_of(ts.destination)];
  }
  EXPECT_EQ(census, st.stages_per_ccc);
  std::size_t sum = 0;
  for (const std::size_t n : st.stages_per_ccc) sum += n;
  EXPECT_EQ(sum, st.stage_count);

  // The registry and the view agree (the struct is a projection of it).
  const MetricsRegistry& m = an.metrics();
  EXPECT_EQ(m.find_counter("propagate.stage_evaluations")->value(),
            st.stage_evaluations);
  EXPECT_EQ(m.find_counter("propagate.worklist_pushes")->value(),
            st.worklist_pushes);
  EXPECT_EQ(m.find_counter("eco.updates")->value(), st.incremental_updates);
}

TEST(EcoTiming, OutputMarkIsAbsorbedSilently) {
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 3, 1);
  Netlist nl = g.netlist;
  TimingAnalyzer an(nl, tech_for(g), model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  nl.mark_output("s1");  // reporting-only attribute: no re-extraction
  an.update();
  EXPECT_EQ(an.stats().incremental_updates, 1u);
  EXPECT_EQ(an.stats().dirty_cccs, 0u);
}

}  // namespace
}  // namespace sldm
