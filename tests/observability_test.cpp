// Observability contracts: the metrics registry, the span tracer (and
// its Chrome trace-event JSON export, round-tripped through the strict
// util/json parser), and the explain traces, whose per-stage delay
// breakdown must sum to the reported arrival on every generator
// circuit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "delay/rctree.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "timing/explain.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace sldm {
namespace {

/// A scratch file deleted at scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/sldm_obs_test_" + name) {}
  TempFile(const std::string& name, const std::string& contents)
      : TempFile(name) {
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr const char* kChainSim =
    "e in gnd s1 4 8\n"
    "d s1 s1 vdd 8 4\n"
    "e s1 gnd out 4 8\n"
    "d out out vdd 8 4\n"
    "@in in\n"
    "@out out\n";

int run(const std::vector<std::string>& args, std::string* out_text) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  if (out_text) *out_text = out.str();
  EXPECT_EQ(err.str().find("error:"), std::string::npos) << err.str();
  return code;
}

/// One circuit per generator in src/gen (mirrors eco_timing_test).
std::vector<GeneratedCircuit> generator_suite() {
  std::vector<GeneratedCircuit> out;
  out.push_back(inverter_chain(Style::kCmos, 8, 3));
  out.push_back(inverter_chain(Style::kNmos, 6, 2));
  out.push_back(nand_chain(Style::kCmos, 3));
  out.push_back(nor_chain(Style::kNmos, 3));
  out.push_back(pass_chain(Style::kNmos, 5));
  out.push_back(barrel_shifter(Style::kCmos, 4));
  out.push_back(manchester_carry(Style::kNmos, 6));
  out.push_back(precharged_bus(Style::kCmos, 5));
  out.push_back(driver_chain(Style::kCmos, 4, 2.5, 80.0));
  out.push_back(address_decoder(Style::kCmos, 3));
  out.push_back(pla(Style::kCmos, 4, 5, 3, 0x1234));
  out.push_back(shift_register(Style::kCmos, 3));
  out.push_back(sram_read_column(Style::kNmos, 6));
  out.push_back(random_logic(Style::kCmos, 6, 10, 0xABCD));
  return out;
}

const Tech& tech_for(const GeneratedCircuit& g) {
  static const Tech nmos = nmos4();
  static const Tech cmos = cmos3();
  return g.style == Style::kNmos ? nmos : cmos;
}

// ---------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CountersGaugesAndHistogramsByName) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  Counter& c = reg.counter("a.count");
  c.add();
  c.add(4);
  EXPECT_EQ(reg.counter("a.count").value(), 5u);  // same object by name
  reg.gauge("a.seconds").set(0.25);
  Histogram& h = reg.histogram("a.dist", 0.0, 10.0, 5);
  h.add(1.0);
  h.add(9.0);
  EXPECT_FALSE(reg.empty());

  EXPECT_EQ(reg.find_counter("a.count")->value(), 5u);
  EXPECT_EQ(reg.find_gauge("a.seconds")->value(), 0.25);
  EXPECT_EQ(reg.find_histogram("a.dist")->total(), 2u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
}

TEST(Metrics, RegistryIsCopyableSnapshot) {
  MetricsRegistry reg;
  reg.counter("n").add(7);
  MetricsRegistry snap = reg;
  reg.counter("n").add(1);
  EXPECT_EQ(snap.find_counter("n")->value(), 7u);
  EXPECT_EQ(reg.find_counter("n")->value(), 8u);
}

TEST(Metrics, ToJsonRoundTrips) {
  MetricsRegistry reg;
  reg.counter("evals").add(42);
  reg.gauge("seconds").set(1.5);
  Histogram& h = reg.histogram("depth", 0.0, 8.0, 4);
  h.add(1.0);
  h.add(3.0);
  h.add(100.0);  // clamps into the last bucket

  const JsonValue doc = parse_json(reg.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("counters").at("evals").as_number(), 42.0);
  EXPECT_EQ(doc.at("gauges").at("seconds").as_number(), 1.5);
  const JsonValue& depth = doc.at("histograms").at("depth");
  EXPECT_EQ(depth.at("lo").as_number(), 0.0);
  EXPECT_EQ(depth.at("hi").as_number(), 8.0);
  EXPECT_EQ(depth.at("total").as_number(), 3.0);
  ASSERT_EQ(depth.at("counts").items().size(), 4u);
  double total = 0.0;
  for (const JsonValue& b : depth.at("counts").items()) {
    total += b.as_number();
  }
  EXPECT_EQ(total, 3.0);
}

TEST(Metrics, AnalyzerRegistryCarriesTheDocumentedNames) {
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 4, 1);
  TimingAnalyzer an(g.netlist, tech_for(g), model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();

  const MetricsRegistry& m = an.metrics();
  for (const char* name :
       {"propagate.stage_evaluations", "propagate.worklist_pushes",
        "propagate.arrival_updates", "eco.updates"}) {
    ASSERT_NE(m.find_counter(name), nullptr) << name;
  }
  for (const char* name : {"extract.seconds", "propagate.seconds",
                           "eco.update_seconds", "eco.dirty_cccs",
                           "eco.reextracted_stages", "eco.reused_stages",
                           "eco.frontier_keys"}) {
    ASSERT_NE(m.find_gauge(name), nullptr) << name;
  }
  for (const char* name :
       {"extract.stage_fan_in", "propagate.rc_path_depth",
        "propagate.eval_us", "propagate.queue_depth", "eco.frontier_size"}) {
    ASSERT_NE(m.find_histogram(name), nullptr) << name;
  }
  EXPECT_GT(m.find_counter("propagate.stage_evaluations")->value(), 0u);
  EXPECT_GT(m.find_histogram("extract.stage_fan_in")->total(), 0u);
  EXPECT_GT(m.find_histogram("propagate.rc_path_depth")->total(), 0u);
}

// ---------------------------------------------------------------------
// Span tracer.

/// Restores the global tracer to off+empty around a test body.
class TracerSandbox {
 public:
  TracerSandbox() {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
  ~TracerSandbox() {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

TEST(Trace, DisabledSpansRecordNothing) {
  TracerSandbox sandbox;
  {
    TraceSpan span("noop", "test");
    EXPECT_FALSE(span.armed());
    span.arg("k", 1.0);  // must be a no-op, not a crash
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
}

TEST(Trace, EnabledSpansExportChromeTraceJson) {
  TracerSandbox sandbox;
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    TraceSpan span("phase-a", "test");
    EXPECT_TRUE(span.armed());
    span.arg("items", 3.0);
  }
  { TraceSpan span("phase-b", "test"); }
  tracer.disable();
  EXPECT_EQ(tracer.event_count(), 2u);

  const JsonValue doc = parse_json(tracer.to_json());
  const std::vector<JsonValue>& events = doc.at("traceEvents").items();
  std::map<std::string, const JsonValue*> spans;
  for (const JsonValue& e : events) {
    if (e.at("ph").as_string() == "X") {
      spans[e.at("name").as_string()] = &e;
    }
  }
  ASSERT_EQ(spans.size(), 2u);
  const JsonValue& a = *spans.at("phase-a");
  EXPECT_EQ(a.at("cat").as_string(), "test");
  EXPECT_GE(a.at("dur").as_number(), 0.0);
  EXPECT_EQ(a.at("args").at("items").as_number(), 3.0);
  // Both spans ran on this (registered) thread.
  EXPECT_EQ(a.at("tid").as_number(),
            spans.at("phase-b")->at("tid").as_number());
}

TEST(Trace, PoolWorkersAreNamedAndAttributed) {
  TracerSandbox sandbox;
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  const int main_tid = tracer.thread_id();
  {
    ThreadPool pool(3);  // spawns two workers ("sldm-w0", "sldm-w1")
    for (int i = 0; i < 8; ++i) {
      pool.submit([] { TraceSpan span("chunk", "test"); });
    }
    pool.wait();
  }
  tracer.disable();

  const JsonValue doc = parse_json(tracer.to_json());
  std::map<int, std::string> thread_names;
  std::set<int> span_tids;
  for (const JsonValue& e : doc.at("traceEvents").items()) {
    if (e.at("ph").as_string() == "M") {
      ASSERT_EQ(e.at("name").as_string(), "thread_name");
      thread_names[static_cast<int>(e.at("tid").as_number())] =
          e.at("args").at("name").as_string();
    } else {
      span_tids.insert(static_cast<int>(e.at("tid").as_number()));
    }
  }
  ASSERT_FALSE(span_tids.empty());
  for (const int tid : span_tids) {
    ASSERT_NE(thread_names.find(tid), thread_names.end())
        << "span on unregistered thread " << tid;
    if (tid != main_tid) {
      EXPECT_EQ(thread_names[tid].rfind("sldm-w", 0), 0u)
          << thread_names[tid];
    }
  }
}

TEST(Trace, ClearDropsEventsButKeepsThreadIds) {
  TracerSandbox sandbox;
  Tracer& tracer = Tracer::instance();
  const int tid = tracer.thread_id();
  tracer.enable();
  { TraceSpan span("x", "test"); }
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.thread_id(), tid);
}

/// The acceptance contract for `sldm time/eco --trace`: the file parses
/// as Chrome trace-event JSON and carries the engine's phase spans with
/// registered thread ids.
TEST(Trace, CliTraceFileRoundTripsWithEnginePhases) {
  TracerSandbox sandbox;
  TempFile sim("chain.sim", kChainSim);
  TempFile trace("trace.json");

  std::string out;
  ASSERT_EQ(run({"time", sim.path(), "--model", "rc-tree", "--threads", "2",
                 "--trace", trace.path()},
                &out),
            0);
  EXPECT_NE(out.find("wrote trace"), std::string::npos);

  const JsonValue doc = parse_json_file(trace.path());
  std::map<int, std::string> thread_names;
  std::set<std::string> span_names;
  for (const JsonValue& e : doc.at("traceEvents").items()) {
    if (e.at("ph").as_string() == "M") {
      thread_names[static_cast<int>(e.at("tid").as_number())] =
          e.at("args").at("name").as_string();
    } else {
      ASSERT_EQ(e.at("ph").as_string(), "X");
      span_names.insert(e.at("name").as_string());
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      EXPECT_GE(e.at("ts").as_number(), 0.0);
      ASSERT_NE(
          thread_names.find(static_cast<int>(e.at("tid").as_number())),
          thread_names.end())
          << e.at("name").as_string() << " on unregistered thread";
    }
  }
  for (const char* phase :
       {"ccc-partition", "extract", "extract-chunk", "propagate"}) {
    EXPECT_NE(span_names.find(phase), span_names.end()) << phase;
  }
  // The capture is scoped to the traced analysis: no stale spans from
  // other tests, and the file ends the capture.
  EXPECT_FALSE(Tracer::instance().enabled());
}

TEST(Trace, CliEcoTraceCarriesUpdatePhases) {
  TracerSandbox sandbox;
  TempFile sim("eco_chain.sim", kChainSim);
  TempFile eco("edit.eco", "width in gnd s1 16\ncap s1 25\n");
  TempFile trace("eco_trace.json");

  std::string out;
  ASSERT_EQ(run({"eco", sim.path(), eco.path(), "--model", "rc-tree",
                 "--trace", trace.path()},
                &out),
            0);

  const JsonValue doc = parse_json_file(trace.path());
  std::set<std::string> span_names;
  for (const JsonValue& e : doc.at("traceEvents").items()) {
    if (e.at("ph").as_string() == "X") {
      span_names.insert(e.at("name").as_string());
    }
  }
  for (const char* phase :
       {"update", "update-partition", "update-extract", "update-splice",
        "update-invalidate", "update-propagate"}) {
    EXPECT_NE(span_names.find(phase), span_names.end()) << phase;
  }
}

// ---------------------------------------------------------------------
// Explain traces.

/// Acceptance criterion: on every generator circuit, the per-stage
/// delays reported by explain_arrival() sum to the committed arrival
/// within 1e-9 s (they are in fact bit-identical re-evaluations).
TEST(Explain, StageDelaysSumToArrivalOnEveryGenerator) {
  const RcTreeModel model;
  for (const GeneratedCircuit& g : generator_suite()) {
    TimingAnalyzer an(g.netlist, tech_for(g), model);
    an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
    an.run();

    // Check the worst arrival and every output the circuit declares.
    std::vector<std::pair<NodeId, Transition>> targets;
    const auto worst = an.worst_arrival(/*outputs_only=*/false);
    ASSERT_TRUE(worst.has_value()) << g.name;
    targets.emplace_back(worst->node, worst->dir);
    for (NodeId n : g.netlist.all_nodes()) {
      if (!g.netlist.node(n).is_output) continue;
      for (Transition dir : {Transition::kRise, Transition::kFall}) {
        if (an.arrival(n, dir)) targets.emplace_back(n, dir);
      }
    }

    for (const auto& [node, dir] : targets) {
      const ExplainReport report = explain_arrival(an, node, dir);
      ASSERT_FALSE(report.steps.empty()) << g.name;
      EXPECT_TRUE(report.steps.front().is_seed) << g.name;
      Seconds sum = 0.0;
      for (const ExplainStep& step : report.steps) {
        sum += step.is_seed ? step.arrival : step.delay;
      }
      EXPECT_NEAR(sum, report.arrival, 1e-9)
          << g.name << ' ' << g.netlist.node(node).name << ' '
          << to_string(dir);
      // Each step's audited estimate matches the committed arrival
      // delta exactly (same model, same inputs, same arithmetic).
      for (std::size_t i = 1; i < report.steps.size(); ++i) {
        const ExplainStep& step = report.steps[i];
        EXPECT_EQ(step.audit.estimate.output_slope, step.slope)
            << g.name << " step " << i;
        EXPECT_EQ(step.audit.model, model.name()) << g.name;
      }
    }
  }
}

TEST(Explain, ReportsSeedAndAuditTermsForSlopeModel) {
  TempFile sim("explain_chain.sim", kChainSim);
  std::string out;
  ASSERT_EQ(run({"explain", sim.path(), "out", "--model", "slope"}, &out),
            0);
  EXPECT_NE(out.find("explain: out"), std::string::npos);
  EXPECT_NE(out.find("<- input"), std::string::npos);
  EXPECT_NE(out.find("rho"), std::string::npos);
  EXPECT_NE(out.find("sum of stage delays"), std::string::npos);
}

TEST(Explain, JsonBreakdownRoundTripsAndSums) {
  TempFile sim("explain_json.sim", kChainSim);
  std::string out;
  ASSERT_EQ(run({"explain", sim.path(), "out", "--model", "rc-tree",
                 "--json"},
                &out),
            0);
  const JsonValue doc = parse_json(out);
  EXPECT_EQ(doc.at("node").as_string(), "out");
  const double arrival = doc.at("arrival_s").as_number();
  double sum = 0.0;
  for (const JsonValue& step : doc.at("steps").items()) {
    if (step.at("seed").as_bool()) {
      sum += step.at("arrival_s").as_number();
      EXPECT_EQ(step.find("audit"), nullptr);
    } else {
      sum += step.at("delay_s").as_number();
      const JsonValue& audit = step.at("audit");
      EXPECT_GT(audit.at("r_total_ohm").as_number(), 0.0);
      EXPECT_GT(audit.at("c_total_f").as_number(), 0.0);
      EXPECT_EQ(audit.at("model").as_string(), "rc-tree");
    }
  }
  EXPECT_NEAR(sum, arrival, 1e-9);
}

TEST(Explain, UnknownNodeIsAnalysisError) {
  TempFile sim("explain_bad.sim", kChainSim);
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_cli({"explain", sim.path(), "nope"}, out, err), 1);
  EXPECT_NE(err.str().find("error:"), std::string::npos);
}

// ---------------------------------------------------------------------
// Stats JSON: the CLI's --stats --json object embeds the registry.

TEST(StatsJson, EmbedsMetricsRegistry) {
  TempFile sim("statsjson.sim", kChainSim);
  std::string out;
  ASSERT_EQ(
      run({"time", sim.path(), "--model", "rc-tree", "--stats", "--json"},
          &out),
      0);
  // The JSON object is one line of the report; pick it out.
  std::string json_line;
  std::istringstream lines(out);
  for (std::string line; std::getline(lines, line);) {
    if (!line.empty() && line.front() == '{') json_line = line;
  }
  ASSERT_FALSE(json_line.empty()) << out;
  const JsonValue doc = parse_json(json_line);
  EXPECT_GE(doc.at("stage_count").as_number(), 1.0);
  const JsonValue& metrics = doc.at("metrics");
  EXPECT_EQ(
      metrics.at("counters").at("propagate.stage_evaluations").as_number(),
      doc.at("stage_evaluations").as_number());
  EXPECT_EQ(metrics.at("gauges").at("extract.seconds").as_number(),
            doc.at("extract_seconds").as_number());
  ASSERT_NE(metrics.at("histograms").find("extract.stage_fan_in"), nullptr);
}

}  // namespace
}  // namespace sldm
