// Tests for the static timing analyzer: arrival propagation, critical
// paths, worst-arrival queries, and loop detection.
#include <gtest/gtest.h>

#include "delay/lumped.h"
#include "delay/rctree.h"
#include "delay/slope.h"
#include "util/contracts.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "timing/report.h"
#include "util/error.h"
#include "util/units.h"

namespace sldm {
namespace {

using namespace units;

TEST(Analyzer, ChainArrivalsAreMonotone) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 4, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();

  Seconds prev = 0.0;
  for (int i = 1; i <= 4; ++i) {
    const NodeId n = *g.netlist.find_node("s" + std::to_string(i));
    const Transition dir =
        (i % 2 == 1) ? Transition::kFall : Transition::kRise;
    const auto info = an.arrival(n, dir);
    ASSERT_TRUE(info.has_value()) << "stage " << i;
    EXPECT_GT(info->time, prev) << "stage " << i;
    EXPECT_GT(info->slope, 0.0);
    prev = info->time;
  }
}

TEST(Analyzer, OnlySeededDirectionPropagates) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 2, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const NodeId s1 = *g.netlist.find_node("s1");
  EXPECT_TRUE(an.arrival(s1, Transition::kFall).has_value());
  EXPECT_FALSE(an.arrival(s1, Transition::kRise).has_value())
      << "input never falls, so s1 never rises";
}

TEST(Analyzer, CriticalPathWalksBackToInput) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 3, 2);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();

  const auto worst = an.worst_arrival(/*outputs_only=*/true);
  ASSERT_TRUE(worst.has_value());
  const auto path = an.critical_path(worst->node, worst->dir);
  ASSERT_EQ(path.size(), 4u) << "input + 3 stages";
  EXPECT_EQ(path.front().node, g.input);
  EXPECT_EQ(path.front().description, "<- input");
  EXPECT_EQ(path.back().node, worst->node);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_GT(path[i].time, path[i - 1].time);
  }
  EXPECT_FALSE(format_path(g.netlist, path).empty());
}

TEST(Analyzer, WorstArrivalOutputsOnlyVsAll) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  // fanout loads are not outputs; with outputs_only=false they count.
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 2, 3);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const auto outputs = an.worst_arrival(true);
  const auto all = an.worst_arrival(false);
  ASSERT_TRUE(outputs.has_value());
  ASSERT_TRUE(all.has_value());
  EXPECT_GE(all->time, outputs->time);
}

TEST(Analyzer, NandSideInputNotSeededStillConducts) {
  // Only a0 is seeded; the stage through the two series devices fires
  // because the path's other transistor is assumed conducting.
  const Tech tech = cmos3();
  const RcTreeModel model;
  const GeneratedCircuit g = nand_chain(Style::kCmos, 2);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const NodeId y = *g.netlist.find_node("y");
  EXPECT_TRUE(an.arrival(y, Transition::kFall).has_value());
  EXPECT_TRUE(an.arrival(g.output, Transition::kRise).has_value());
}

TEST(Analyzer, PassChainSingleStageNotPerHop) {
  // The fall arrival at the chain end comes from one long stage, so its
  // predecessor is the primary input directly.
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = pass_chain(Style::kNmos, 4);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const NodeId p4 = *g.netlist.find_node("p4");
  const auto info = an.arrival(p4, Transition::kFall);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->from_node, g.input);
}

TEST(Analyzer, ElmoreBeatsLumpedOnPassChain) {
  const Tech tech = nmos4();
  const GeneratedCircuit g = pass_chain(Style::kNmos, 6);
  const NodeId p6 = *g.netlist.find_node("p6");

  const LumpedRcModel lumped;
  const RcTreeModel rctree;
  TimingAnalyzer a1(g.netlist, tech, lumped);
  a1.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  a1.run();
  TimingAnalyzer a2(g.netlist, tech, rctree);
  a2.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  a2.run();
  const auto t_lumped = a1.arrival(p6, Transition::kFall);
  const auto t_rctree = a2.arrival(p6, Transition::kFall);
  ASSERT_TRUE(t_lumped && t_rctree);
  EXPECT_GT(t_lumped->time, 1.4 * t_rctree->time)
      << "lumped RC should be strongly pessimistic on a 7-element chain";
}

TEST(Analyzer, InputEventValidation) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  EXPECT_THROW(an.add_input_event(g.output, Transition::kRise, 0.0, 1e-9),
               ContractViolation)
      << "only input-marked nodes can be seeded";
  EXPECT_THROW(an.add_input_event(g.input, Transition::kRise, 0.0, -1.0),
               ContractViolation);
}

TEST(Analyzer, AddAllInputEventsSeedsBothDirections) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 2, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_all_input_events(1e-9);
  an.run();
  const NodeId s1 = *g.netlist.find_node("s1");
  EXPECT_TRUE(an.arrival(s1, Transition::kFall).has_value());
  EXPECT_TRUE(an.arrival(s1, Transition::kRise).has_value());
}

TEST(Analyzer, StageEvaluationCounterAdvances) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 3, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  EXPECT_GE(an.stage_evaluations(), 3u);
}

TEST(Analyzer, RingOscillatorLoopIsDetected) {
  // A 3-inverter ring has no stable arrival fixpoint; the analyzer must
  // stop with a loop diagnostic instead of spinning.
  CircuitBuilder b(Style::kCmos);
  const NodeId start = b.input("start");
  const NodeId n1 = b.inverter(start, "n1");
  const NodeId n2 = b.inverter(n1, "n2");
  const NodeId n3 = b.inverter(n2, "n3");
  // Feed n3 back into n1's gate by adding a parallel driver of n1
  // gated by n3 (creates the cyclic trigger structure).
  const Sizing s = Sizing::standard(Style::kCmos);
  b.netlist().add_transistor(TransistorType::kNEnhancement, n3, b.gnd(), n1,
                             s.driver_w, s.driver_l);
  b.netlist().add_transistor(TransistorType::kPEnhancement, n3, n1, b.vdd(),
                             s.load_w, s.load_l);
  const Netlist& nl = b.netlist();

  const Tech tech = cmos3();
  const RcTreeModel model;
  AnalyzerOptions opts;
  opts.max_updates_per_arrival = 8;
  TimingAnalyzer an(nl, tech, model, opts);
  an.add_input_event(start, Transition::kRise, 0.0, 1e-9);
  EXPECT_THROW(an.run(), Error);
}

TEST(Report, AllArrivalsTableListsInternalNodes) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 3, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const std::string table = format_all_arrivals(g.netlist, an);
  EXPECT_NE(table.find("s1"), std::string::npos);
  EXPECT_NE(table.find("s2"), std::string::npos);
  EXPECT_NE(table.find("s3"), std::string::npos);
  EXPECT_EQ(table.find("vdd"), std::string::npos) << "rails excluded";
  EXPECT_EQ(table.find("in "), std::string::npos) << "inputs excluded";
}

TEST(Report, OutputArrivalTableListsOutputs) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 2, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const std::string table = format_output_arrivals(g.netlist, an);
  EXPECT_NE(table.find("s2"), std::string::npos);
}

}  // namespace
}  // namespace sldm
