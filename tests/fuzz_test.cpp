// Tests for the differential fuzzing subsystem (src/fuzz): seed
// determinism, generated-circuit validity, shrinking, repro round
// trips, the checked-in corpus under testdata/fuzz/, eco parser
// hardening, and the degenerate stage shapes the fuzzer exposed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "delay/lumped.h"
#include "delay/rctree.h"
#include "fuzz/eco_fuzzer.h"
#include "fuzz/fuzz.h"
#include "fuzz/netlist_fuzzer.h"
#include "fuzz/oracles.h"
#include "fuzz/repro.h"
#include "fuzz/rng.h"
#include "fuzz/shrink.h"
#include "netlist/checks.h"
#include "netlist/eco_io.h"
#include "netlist/sim_io.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "util/error.h"

namespace sldm {
namespace {

const std::string kFuzzData = std::string(SLDM_SOURCE_DIR) + "/testdata/fuzz";

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// --- rng -----------------------------------------------------------------

TEST(FuzzRng, DeterministicStream) {
  FuzzRng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  // Different seeds diverge immediately (splitmix64 mixes the seed).
  EXPECT_NE(FuzzRng(42).next(), c.next());
}

TEST(FuzzRng, BelowStaysInRangeAndForkDecorrelates) {
  FuzzRng rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  FuzzRng parent(7);
  FuzzRng child(parent.fork());
  // The fork must not replay the parent's stream.
  EXPECT_NE(child.next(), FuzzRng(7).next());
}

// --- generated circuits --------------------------------------------------

TEST(NetlistFuzzer, RandomCircuitsAreStructurallyValid) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    FuzzRng rng(seed);
    const GeneratedCircuit g = random_circuit(rng);
    EXPECT_TRUE(all_ok(check(g.netlist))) << g.name << " seed " << seed;
    EXPECT_TRUE(g.input.valid()) << g.name;
    EXPECT_TRUE(g.output.valid()) << g.name;
  }
}

TEST(NetlistFuzzer, SameSeedSameCircuit) {
  FuzzRng a(99), b(99);
  const GeneratedCircuit ga = random_circuit(a);
  const GeneratedCircuit gb = random_circuit(b);
  EXPECT_EQ(ga.name, gb.name);
  ASSERT_EQ(ga.netlist.device_count(), gb.netlist.device_count());
  ASSERT_EQ(ga.netlist.node_count(), gb.netlist.node_count());
  std::ostringstream sa, sb;
  write_sim(ga.netlist, sa);
  write_sim(gb.netlist, sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(NetlistFuzzer, SoupWithBridgesStaysAnalyzable) {
  // Flow-restricted bridges must not create stage-graph cycles.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FuzzRng rng(seed);
    const GeneratedCircuit g =
        random_soup(seed % 2 ? Style::kNmos : Style::kCmos, 5, 3, rng);
    ASSERT_TRUE(all_ok(check(g.netlist))) << seed;
    const RcTreeModel model;
    const Tech tech = seed % 2 ? nmos4() : cmos3();
    TimingAnalyzer an(g.netlist, tech, model);
    an.add_all_input_events(1e-9);
    EXPECT_NO_THROW(an.run()) << "soup seed " << seed;
  }
}

// --- campaign ------------------------------------------------------------

TEST(FuzzCampaign, DeterministicAndCleanOnSeededRun) {
  FuzzOptions opts;
  opts.seed = 11;
  opts.iterations = 60;
  opts.threads = 4;
  std::ostringstream log1, log2;
  const FuzzReport r1 = run_fuzz(opts, log1);
  const FuzzReport r2 = run_fuzz(opts, log2);
  EXPECT_TRUE(r1.clean()) << r1.to_string();
  EXPECT_EQ(r1.to_string(), r2.to_string());
  EXPECT_EQ(log1.str(), log2.str());
  // Every oracle participated.
  EXPECT_GT(r1.oracle_runs.at("netlist-check"), 0u);
  EXPECT_GT(r1.oracle_runs.at("sanity"), 0u);
  EXPECT_GT(r1.oracle_runs.at("stage-bounds"), 0u);
  EXPECT_GT(r1.oracle_runs.at("eco-identity"), 0u);
}

TEST(FuzzCampaign, SingleThreadMatchesMultiThread) {
  // The eco-identity oracle varies its thread list with opts.threads,
  // but verdicts and accounting must not change.
  FuzzOptions a;
  a.seed = 23;
  a.iterations = 40;
  a.threads = 1;
  FuzzOptions b = a;
  b.threads = 8;
  std::ostringstream log;
  const FuzzReport ra = run_fuzz(a, log);
  const FuzzReport rb = run_fuzz(b, log);
  EXPECT_TRUE(ra.clean()) << ra.to_string();
  EXPECT_TRUE(rb.clean()) << rb.to_string();
  EXPECT_EQ(ra.oracle_runs, rb.oracle_runs);
  EXPECT_EQ(ra.oracle_skips, rb.oracle_skips);
}

// --- shrinking -----------------------------------------------------------

TEST(Shrink, ReducesToOneMinimalWitness) {
  FuzzRng rng(5);
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 6, 3);
  const auto count_depletion = [](const GeneratedCircuit& c) {
    std::size_t n = 0;
    for (DeviceId d : c.netlist.all_devices()) {
      if (c.netlist.device(d).type == TransistorType::kNDepletion) ++n;
    }
    return n;
  };
  ASSERT_GT(count_depletion(g), 1u);
  const GeneratedCircuit small = shrink_circuit(
      g, [&](const GeneratedCircuit& c) { return count_depletion(c) >= 1; });
  // ddmin is 1-minimal: removing any single remaining device must break
  // the predicate, so exactly one (depletion) device survives.
  EXPECT_EQ(small.netlist.device_count(), 1u);
  EXPECT_EQ(count_depletion(small), 1u);
}

TEST(Shrink, EcoScriptLineMinimization) {
  const std::vector<std::string> lines = {"a", "b", "keep", "c", "d"};
  const auto fails = [](const std::vector<std::string>& ls) {
    for (const auto& l : ls) {
      if (l == "keep") return true;
    }
    return false;
  };
  const std::vector<std::string> small = shrink_eco(lines, fails);
  ASSERT_EQ(small.size(), 1u);
  EXPECT_EQ(small[0], "keep");
}

TEST(Shrink, SubsetPreservesRolesAndMetadata) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 3, 1);
  std::vector<bool> keep(g.netlist.device_count(), false);
  keep[0] = true;
  const GeneratedCircuit s = subset_circuit(g, keep);
  EXPECT_EQ(s.netlist.device_count(), 1u);
  // The stimulated input and observed output survive by role even when
  // no kept device touches them.
  EXPECT_TRUE(s.input.valid());
  EXPECT_TRUE(s.output.valid());
  EXPECT_EQ(s.netlist.node(s.input).name, g.netlist.node(g.input).name);
  EXPECT_EQ(s.netlist.node(s.output).name, g.netlist.node(g.output).name);
}

// --- repro files ---------------------------------------------------------

TEST(Repro, WriteLoadRoundTrip) {
  const std::string dir = temp_path("sldm_fuzz_repro");
  std::filesystem::create_directories(dir);
  FuzzRng rng(3);
  const GeneratedCircuit g = random_circuit(rng);
  std::ostringstream sim;
  write_sim(g.netlist, sim);

  ReproCase c;
  c.oracle = "stage-bounds";
  c.seed = 1234567;
  c.threads = 4;
  c.slope_ns = 2.5;
  c.detail = "round-trip fixture";
  const std::string manifest =
      write_repro(dir, "roundtrip", c, sim.str(), "", "");
  const ReproCase loaded = load_repro(manifest);
  EXPECT_EQ(loaded.oracle, c.oracle);
  EXPECT_EQ(loaded.seed, c.seed);
  EXPECT_EQ(loaded.threads, c.threads);
  EXPECT_DOUBLE_EQ(loaded.slope_ns, c.slope_ns);
  EXPECT_EQ(loaded.detail, c.detail);
  const OracleResult r = replay_repro(loaded);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Repro, LoadRejectsMalformedManifests) {
  const std::string dir = temp_path("sldm_fuzz_badrepro");
  std::filesystem::create_directories(dir);
  const auto write_and_load = [&](const std::string& name,
                                  const std::string& text) {
    const std::string path = dir + "/" + name + ".repro";
    std::ofstream(path) << text;
    return load_repro(path);
  };
  EXPECT_THROW(write_and_load("unknown", "oracle x\nwhatever y\n"),
               ParseError);
  EXPECT_THROW(write_and_load("novalue", "oracle\n"), ParseError);
  EXPECT_THROW(write_and_load("noracle", "seed 1\n"), ParseError);
  EXPECT_THROW(write_and_load("badseed", "oracle x\nseed -2y\n"), ParseError);
}

TEST(Repro, CheckedInCorpusReplaysClean) {
  std::ostringstream log;
  EXPECT_EQ(replay_path(kFuzzData, log), 0) << log.str();
}

// --- eco parser hardening (the NaN/Inf class of bugs) --------------------

TEST(EcoParser, RejectsMalformedLines) {
  const Netlist base =
      read_sim_file(kFuzzData + "/eco_reject_nan_width.sim");
  const std::vector<std::string> bad = {
      "width a gnd out nan",
      "width a gnd out inf",
      "width a gnd out -3",
      "width a gnd out 0",
      "length a gnd out nan",
      "cap out nan",
      "cap out inf",
      "cap out -1",
      "addcap out -inf",
      "flow a gnd out sideways",
      "set out 2",
      "width a gnd out",
      "transistor e a gnd",
      "transistor z a b c 2 4",
      "frobnicate out 3",
  };
  for (const std::string& line : bad) {
    Netlist nl = base;
    std::istringstream in(line);
    EXPECT_THROW(apply_eco(in, nl, "<bad>"), ParseError) << line;
  }
  // Errors carry the line number of the offending record.
  Netlist nl = base;
  std::istringstream in("| comment\ncap out 5\nwidth a gnd out nan\n");
  try {
    apply_eco(in, nl, "<bad>");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("<bad>:3:"), std::string::npos)
        << e.what();
  }
}

TEST(EcoParser, CliExitsNonZeroOnMalformedScript) {
  const std::string sim = kFuzzData + "/eco_reject_nan_width.sim";
  const std::string eco = temp_path("bad_width.eco");
  std::ofstream(eco) << "width a gnd out nan\n";
  std::ostringstream out, err;
  const int rc = run_cli({"eco", sim, eco, "--model", "rc-tree"}, out, err);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(err.str().find("error:"), std::string::npos) << err.str();
}

// --- degenerate stage shapes --------------------------------------------

TEST(DegenerateStages, AnalyzersAgreeAndEstimatesStayPositive) {
  const Netlist nl = read_sim_file(kFuzzData + "/degenerate_stages.sim");
  ASSERT_TRUE(all_ok(check(nl)));
  const Tech tech = nmos4();

  const RcTreeModel rctree;
  const LumpedRcModel lumped;
  TimingAnalyzer a_tree(nl, tech, rctree);
  TimingAnalyzer a_lump(nl, tech, lumped);
  a_tree.add_all_input_events(1e-9);
  a_lump.add_all_input_events(1e-9);
  a_tree.run();
  a_lump.run();

  // Both models produce arrivals at the zero-cap pass node, the
  // one-transistor CCC's output, and the pull-up+pass-driven node.
  for (const char* name : {"mid", "probe", "shared", "out"}) {
    const auto node = nl.find_node(name);
    ASSERT_TRUE(node.has_value()) << name;
    bool any = false;
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      const auto t = a_tree.arrival(*node, dir);
      const auto l = a_lump.arrival(*node, dir);
      EXPECT_EQ(t.has_value(), l.has_value())
          << name << ' ' << to_string(dir);
      if (!t || !l) continue;
      any = true;
      EXPECT_TRUE(std::isfinite(t->time)) << name;
      EXPECT_GE(t->time, 0.0) << name;
      EXPECT_GE(t->slope, 0.0) << name;
      // Lumped is never optimistic relative to the RC-tree estimate.
      EXPECT_GE(l->time, t->time - 1e-18) << name << ' ' << to_string(dir);
    }
    EXPECT_TRUE(any) << name << " never switches";
  }

  // The full bound ordering holds on every extracted stage.
  const OracleResult r =
      check_stage_bounds(nl, tech, a_tree.stages(), 1e-9);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(DegenerateStages, EcoIdentityHoldsOnPassMuxCase) {
  const Netlist nl = read_sim_file(kFuzzData + "/eco_identity_passmux.sim");
  ASSERT_TRUE(all_ok(check(nl)));
  std::ifstream eco(kFuzzData + "/eco_identity_passmux.eco");
  ASSERT_TRUE(eco.is_open());
  std::ostringstream script;
  script << eco.rdbuf();

  GeneratedCircuit g;
  g.name = "passmux";
  g.style = Style::kNmos;
  for (NodeId n : nl.all_nodes()) {
    if (nl.node(n).is_input && !g.input.valid()) g.input = n;
    if (nl.node(n).is_output && !g.output.valid()) g.output = n;
  }
  g.netlist = nl;
  const OracleResult r =
      check_eco_identity(g, script.str(), {1, 2, 4}, 1e-9);
  EXPECT_TRUE(r.ok) << r.detail;
}

// --- eco fuzzer ----------------------------------------------------------

TEST(EcoFuzzer, ScriptsApplyCleanlyToTheirNetlist) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    FuzzRng rng(seed);
    GeneratedCircuit g = random_circuit(rng);
    int new_nodes = 0;
    const std::vector<std::string> lines =
        random_eco_script(g.netlist, rng, 5, g.input, &new_nodes);
    std::istringstream in(join_script(lines));
    EXPECT_NO_THROW(apply_eco(in, g.netlist, "<fuzz>"))
        << g.name << " seed " << seed << ":\n"
        << join_script(lines);
  }
}

}  // namespace
}  // namespace sldm
