// Tests for the analog circuit representation: PWL sources, element
// preconditions, and the level-1 MOSFET evaluation (regions, symmetry,
// p-type mirroring, and a finite-difference check of the Jacobian).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "analog/circuit.h"
#include "tech/tech.h"
#include "util/contracts.h"
#include "util/units.h"

namespace sldm {
namespace {

using namespace units;

// --- PwlSource -----------------------------------------------------------

TEST(PwlSource, DcIsConstant) {
  const PwlSource s = PwlSource::dc(3.3);
  EXPECT_DOUBLE_EQ(s.at(0.0), 3.3);
  EXPECT_DOUBLE_EQ(s.at(1.0), 3.3);
}

TEST(PwlSource, EdgeRampsLinearly) {
  const PwlSource s = PwlSource::edge(0.0, 5.0, 1e-9, 2e-9);
  EXPECT_DOUBLE_EQ(s.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.at(1e-9), 0.0);
  EXPECT_NEAR(s.at(2e-9), 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.at(3e-9), 5.0);
  EXPECT_DOUBLE_EQ(s.at(1.0), 5.0);
}

TEST(PwlSource, EdgeRequiresPositiveRamp) {
  EXPECT_THROW(PwlSource::edge(0.0, 5.0, 1e-9, 0.0), ContractViolation);
}

TEST(PwlSource, PointsClampOutside) {
  const PwlSource s =
      PwlSource::points({{1e-9, 1.0}, {2e-9, 3.0}, {4e-9, 0.0}});
  EXPECT_DOUBLE_EQ(s.at(0.0), 1.0);
  EXPECT_NEAR(s.at(1.5e-9), 2.0, 1e-12);
  EXPECT_NEAR(s.at(3e-9), 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.at(9e-9), 0.0);
  EXPECT_EQ(s.breakpoints().size(), 3u);
}

TEST(PwlSource, PointsMustIncrease) {
  EXPECT_THROW(PwlSource::points({{1e-9, 1.0}, {1e-9, 2.0}}),
               ContractViolation);
  EXPECT_THROW(PwlSource::points({}), ContractViolation);
}

// --- Circuit element preconditions ----------------------------------------

TEST(Circuit, GroundIsNodeZero) {
  Circuit c;
  EXPECT_EQ(c.node_count(), 1u);
  EXPECT_EQ(c.node_name(kGround), "0");
  const AnalogNode n = c.add_node("x");
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(c.node_name(n), "x");
}

TEST(Circuit, ElementValidation) {
  Circuit c;
  const AnalogNode a = c.add_node();
  EXPECT_THROW(c.add_resistor(a, a, 1e3), ContractViolation);
  EXPECT_THROW(c.add_resistor(a, kGround, 0.0), ContractViolation);
  EXPECT_THROW(c.add_capacitor(a, kGround, -1e-15), ContractViolation);
  EXPECT_THROW(c.add_resistor(a, 99, 1e3), ContractViolation);
  c.add_resistor(a, kGround, 1e3);
  c.add_capacitor(a, kGround, 1e-15);
  c.add_vsource(a, kGround, PwlSource::dc(1.0));
  EXPECT_EQ(c.resistors().size(), 1u);
  EXPECT_EQ(c.capacitors().size(), 1u);
  EXPECT_EQ(c.vsources().size(), 1u);
}

// --- Level-1 MOSFET -------------------------------------------------------

Mosfet nmos_unit() {
  Mosfet m;
  m.params = nmos4().params(TransistorType::kNEnhancement);
  m.params.lambda = 0.0;  // keep region formulas exact for the tests
  m.is_p = false;
  m.width = 8 * um;
  m.length = 4 * um;
  return m;
}

Mosfet pmos_unit() {
  Mosfet m;
  m.params = cmos3().params(TransistorType::kPEnhancement);
  m.params.lambda = 0.0;
  m.is_p = true;
  m.width = 12 * um;
  m.length = 3 * um;
  return m;
}

TEST(Mosfet, CutoffBelowThreshold) {
  const Mosfet m = nmos_unit();
  const MosfetOp op = eval_mosfet(m, /*vd=*/5.0, /*vg=*/0.5, /*vs=*/0.0);
  EXPECT_DOUBLE_EQ(op.id, 0.0);
  EXPECT_DOUBLE_EQ(op.d_vg, 0.0);
}

TEST(Mosfet, SaturationCurrentMatchesFormula) {
  const Mosfet m = nmos_unit();
  const double vgs = 5.0;
  const double vov = vgs - m.params.vt;
  const MosfetOp op = eval_mosfet(m, /*vd=*/5.0, vgs, 0.0);
  const double beta = m.params.kp * (m.width / m.length);
  EXPECT_NEAR(op.id, 0.5 * beta * vov * vov, 1e-9);
  EXPECT_NEAR(op.d_vg, beta * vov, 1e-9);
  EXPECT_NEAR(op.d_vd, 0.0, 1e-12);  // lambda = 0
}

TEST(Mosfet, TriodeCurrentMatchesFormula) {
  const Mosfet m = nmos_unit();
  const double vgs = 5.0;
  const double vds = 1.0;  // < vov = 4
  const MosfetOp op = eval_mosfet(m, vds, vgs, 0.0);
  const double beta = m.params.kp * (m.width / m.length);
  const double vov = vgs - m.params.vt;
  EXPECT_NEAR(op.id, beta * (vov * vds - 0.5 * vds * vds), 1e-9);
}

TEST(Mosfet, SourceDrainSymmetry) {
  // Swapping drain and source voltages negates the current.
  const Mosfet m = nmos_unit();
  const MosfetOp fwd = eval_mosfet(m, 2.0, 5.0, 1.0);
  const MosfetOp rev = eval_mosfet(m, 1.0, 5.0, 2.0);
  EXPECT_NEAR(fwd.id, -rev.id, 1e-12);
  EXPECT_GT(fwd.id, 0.0);
}

TEST(Mosfet, DepletionConductsAtZeroVgs) {
  Mosfet m = nmos_unit();
  m.params = nmos4().params(TransistorType::kNDepletion);
  const MosfetOp op = eval_mosfet(m, 5.0, 0.0, 0.0);  // gate at source
  EXPECT_GT(op.id, 0.0);
}

TEST(Mosfet, PmosMirrorsNmos) {
  const Mosfet p = pmos_unit();
  // Source at 5 V, gate low: conducts, current flows INTO the drain
  // node (negative by our leaving-the-drain sign convention).
  const MosfetOp on = eval_mosfet(p, /*vd=*/0.0, /*vg=*/0.0, /*vs=*/5.0);
  EXPECT_LT(on.id, 0.0);
  // Gate at source: off.
  const MosfetOp off = eval_mosfet(p, 0.0, 5.0, 5.0);
  EXPECT_DOUBLE_EQ(off.id, 0.0);
}

TEST(Mosfet, RequiresPositiveGeometry) {
  Mosfet m = nmos_unit();
  m.width = 0.0;
  EXPECT_THROW(eval_mosfet(m, 1.0, 1.0, 0.0), ContractViolation);
}

// Property: analytic Jacobian matches finite differences over random
// operating points, for both polarities and with channel-length
// modulation enabled.
class MosfetJacobianProperty : public ::testing::TestWithParam<int> {};

TEST_P(MosfetJacobianProperty, MatchesFiniteDifference) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 7u);
  std::uniform_real_distribution<double> volt(-1.0, 6.0);
  std::bernoulli_distribution coin(0.5);

  for (int trial = 0; trial < 40; ++trial) {
    Mosfet m = coin(rng) ? nmos_unit() : pmos_unit();
    m.params.lambda = 0.02;
    const double vd = volt(rng);
    const double vg = volt(rng);
    const double vs = volt(rng);
    const MosfetOp op = eval_mosfet(m, vd, vg, vs);
    const double h = 1e-7;
    const double fd_vd =
        (eval_mosfet(m, vd + h, vg, vs).id - eval_mosfet(m, vd - h, vg, vs).id) /
        (2 * h);
    const double fd_vg =
        (eval_mosfet(m, vd, vg + h, vs).id - eval_mosfet(m, vd, vg - h, vs).id) /
        (2 * h);
    const double fd_vs =
        (eval_mosfet(m, vd, vg, vs + h).id - eval_mosfet(m, vd, vg, vs - h).id) /
        (2 * h);
    const double scale = std::max(1e-6, std::abs(op.id));
    EXPECT_NEAR(op.d_vd, fd_vd, 1e-3 * scale + 1e-9)
        << "vd=" << vd << " vg=" << vg << " vs=" << vs << " p=" << m.is_p;
    EXPECT_NEAR(op.d_vg, fd_vg, 1e-3 * scale + 1e-9);
    EXPECT_NEAR(op.d_vs, fd_vs, 1e-3 * scale + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MosfetJacobianProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace sldm
