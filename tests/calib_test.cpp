// Tests for the calibration pipeline.  These run real transient
// simulations, so the grids are kept small.
#include <gtest/gtest.h>

#include "calib/calibrate.h"
#include "delay/slope.h"
#include "tech/tech.h"
#include "util/contracts.h"

namespace sldm {
namespace {

CalibrationOptions fast_options() {
  CalibrationOptions o;
  o.ratios = {0.1, 1.0, 8.0};
  return o;
}

class CalibrateStyle : public ::testing::TestWithParam<Style> {
 protected:
  static const CalibrationResult& result(Style style) {
    static CalibrationResult nmos_result =
        calibrate(nmos4(), Style::kNmos, fast_options());
    static CalibrationResult cmos_result =
        calibrate(cmos3(), Style::kCmos, fast_options());
    return style == Style::kNmos ? nmos_result : cmos_result;
  }
};

TEST_P(CalibrateStyle, ProducesThreeCurves) {
  const CalibrationResult& r = result(GetParam());
  EXPECT_EQ(r.curves.size(), 3u);
  for (const auto& curve : r.curves) {
    EXPECT_EQ(curve.points.size(), 3u);
  }
}

TEST_P(CalibrateStyle, StepMultiplierNearUnity) {
  // After resistance calibration, the fast-input delay multiplier must
  // be close to 1 by construction.
  const CalibrationResult& r = result(GetParam());
  for (const auto& curve : r.curves) {
    EXPECT_NEAR(curve.points.front().delay_mult, 1.0, 0.25)
        << to_letter(curve.type) << ' ' << to_string(curve.dir);
  }
}

TEST_P(CalibrateStyle, SlowInputsStretchDelay) {
  // The heart of the slope model: rho >> 1 must give a visibly larger
  // multiplier than rho << 1.
  const CalibrationResult& r = result(GetParam());
  for (const auto& curve : r.curves) {
    EXPECT_GT(curve.points.back().delay_mult,
              1.2 * curve.points.front().delay_mult)
        << to_letter(curve.type) << ' ' << to_string(curve.dir);
  }
}

TEST_P(CalibrateStyle, ResistancesStayPositiveAndFinite) {
  const CalibrationResult& r = result(GetParam());
  for (const auto& curve : r.curves) {
    const Ohms rsq = r.tech.resistance_sq(curve.type, curve.dir);
    EXPECT_GT(rsq, 100.0);
    EXPECT_LT(rsq, 1e7);
  }
}

TEST_P(CalibrateStyle, TablesCoverEveryCombination) {
  // Uncalibrated combinations fall back to unit tables, so the slope
  // model can always evaluate.
  const CalibrationResult& r = result(GetParam());
  for (TransistorType type :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion,
        TransistorType::kPEnhancement}) {
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      EXPECT_TRUE(r.tables.has(type, dir));
    }
  }
}

TEST_P(CalibrateStyle, TablesMatchCurves) {
  const CalibrationResult& r = result(GetParam());
  for (const auto& curve : r.curves) {
    const SlopeEntry& e = r.tables.entry(curve.type, curve.dir);
    for (const auto& p : curve.points) {
      EXPECT_NEAR(e.delay_mult(p.rho), p.delay_mult, 1e-9);
      EXPECT_NEAR(e.slope_mult(p.rho), p.slope_mult, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Styles, CalibrateStyle,
                         ::testing::Values(Style::kNmos, Style::kCmos));

TEST(Calibrate, RejectsBadOptions) {
  CalibrationOptions o;
  o.ratios = {};
  EXPECT_THROW(calibrate(nmos4(), Style::kNmos, o), ContractViolation);
  o.ratios = {2.0, 1.0};
  EXPECT_THROW(calibrate(nmos4(), Style::kNmos, o), ContractViolation);
  o.ratios = {-1.0, 1.0};
  EXPECT_THROW(calibrate(nmos4(), Style::kNmos, o), ContractViolation);
}

}  // namespace
}  // namespace sldm
