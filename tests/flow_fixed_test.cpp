// Tests for the false-path controls: transistor flow attributes and
// fixed node values.
#include <gtest/gtest.h>

#include <sstream>

#include "delay/rctree.h"
#include "gen/generators.h"
#include "netlist/sim_io.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/units.h"

namespace sldm {
namespace {

using namespace units;

TEST(Flow, DefaultsToBidirectional) {
  Netlist nl;
  const NodeId g = nl.add_node("g");
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  const DeviceId d = nl.add_transistor(TransistorType::kNEnhancement, g, a,
                                       b, 8 * um, 4 * um);
  EXPECT_EQ(nl.device(d).flow, Flow::kBidirectional);
  EXPECT_TRUE(nl.device(d).flow_allows_from(a));
  EXPECT_TRUE(nl.device(d).flow_allows_from(b));
}

TEST(Flow, DirectionalPredicates) {
  Netlist nl;
  const NodeId g = nl.add_node("g");
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  const DeviceId d =
      nl.add_transistor(TransistorType::kNEnhancement, g, a, b, 8 * um,
                        4 * um, Flow::kSourceToDrain);
  EXPECT_TRUE(nl.device(d).flow_allows_from(a));   // a is the source
  EXPECT_FALSE(nl.device(d).flow_allows_from(b));
  nl.set_flow(d, Flow::kDrainToSource);
  EXPECT_FALSE(nl.device(d).flow_allows_from(a));
  EXPECT_TRUE(nl.device(d).flow_allows_from(b));
  EXPECT_THROW(nl.device(d).flow_allows_from(g), ContractViolation);
}

TEST(Flow, SimFileRoundTrip) {
  Netlist nl;
  nl.mark_power("vdd");
  nl.mark_ground("gnd");
  const NodeId g = nl.mark_input("g");
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  nl.add_transistor(TransistorType::kNEnhancement, g, a, b, 8 * um, 4 * um,
                    Flow::kSourceToDrain);
  nl.add_transistor(TransistorType::kNEnhancement, g, b, a, 8 * um, 4 * um,
                    Flow::kDrainToSource);
  const Netlist rt = reparse(nl);
  EXPECT_EQ(rt.device(DeviceId(0)).flow, Flow::kSourceToDrain);
  EXPECT_EQ(rt.device(DeviceId(1)).flow, Flow::kDrainToSource);
}

TEST(Flow, SimParserRejectsUnknownAttribute) {
  std::istringstream in("e g a b 4 8 flow=up\n");
  EXPECT_THROW(read_sim(in, "<t>"), ParseError);
}

TEST(Flow, PrunesBackwardPathsThroughPassNetwork) {
  // Two pass transistors share node mid:  src1 -> mid <- src2.  Without
  // flow attributes a (false) path src1 -> mid -> src2's driver exists
  // for the far node; with both annotated toward mid, only the forward
  // stages remain.
  CircuitBuilder b(Style::kNmos);
  const NodeId in1 = b.input("in1");
  const NodeId in2 = b.input("in2");
  const NodeId sel = b.input("sel");
  const NodeId d1 = b.inverter(in1, "d1");
  const NodeId d2 = b.inverter(in2, "d2");
  const NodeId mid = b.node("mid");
  const DeviceId p1 = b.pass(d1, mid, sel);
  const DeviceId p2 = b.pass(d2, mid, sel);
  b.inverter(mid, "obs");
  Netlist& nl = b.netlist();

  // Unannotated: d1's fall stages include a path from d2's pull-down
  // through BOTH passes (backward through p2).
  const auto before = stages_to(nl, d1, Transition::kFall);
  bool backward_found = false;
  for (const auto& s : before) {
    if (s.path.size() > 1) backward_found = true;
  }
  EXPECT_TRUE(backward_found);

  // Annotate: signal flows d1->mid and d2->mid only.
  nl.set_flow(p1, Flow::kSourceToDrain);
  nl.set_flow(p2, Flow::kSourceToDrain);
  const auto after = stages_to(nl, d1, Transition::kFall);
  for (const auto& s : after) {
    EXPECT_EQ(s.path.size(), 1u)
        << "only d1's own pull-down may drive it now";
  }
  // mid itself is still reachable through both forward passes.
  EXPECT_FALSE(stages_to(nl, mid, Transition::kFall).empty());
}

TEST(FixedValues, PinnedGateDisablesDevice) {
  const GeneratedCircuit g = pass_chain(Style::kNmos, 2);
  const NodeId sel = g.high_inputs[0];
  const NodeId p2 = *g.netlist.find_node("p2");

  ExtractOptions off;
  off.fixed_values[sel] = false;  // selects held low: chain is cut
  EXPECT_TRUE(stages_to(g.netlist, p2, Transition::kFall, off).empty());

  ExtractOptions on;
  on.fixed_values[sel] = true;  // selects pinned high: path exists but
  // the passes are constant-on, so only the driver triggers.
  const auto stages = stages_to(g.netlist, p2, Transition::kFall, on);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(g.netlist.device(stages[0].trigger).gate, g.input);
}

TEST(FixedValues, PinnedNodeActsAsValueSource) {
  // Pin an internal node high: it should source rise-direction paths
  // like a rail.
  CircuitBuilder b(Style::kNmos);
  const NodeId sel = b.input("sel");
  const NodeId a = b.node("a");
  const NodeId out = b.node("out");
  b.pass(a, out, sel);
  b.inverter(out, "obs");
  Netlist& nl = b.netlist();

  ExtractOptions opts;
  opts.fixed_values[nl.find_node("a").value()] = true;
  const auto stages = stages_to(nl, out, Transition::kRise, opts);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].source, *nl.find_node("a"));
  EXPECT_EQ(nl.device(stages[0].trigger).gate, sel);
}

TEST(FixedValues, PinnedNodeIsNotADestination) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 2, 1);
  const NodeId s1 = *g.netlist.find_node("s1");
  ExtractOptions opts;
  opts.fixed_values[s1] = false;
  EXPECT_TRUE(stages_to(g.netlist, s1, Transition::kFall, opts).empty());
  // And s2's pull-down (gated by s1) is now permanently off: no fall.
  const NodeId s2 = *g.netlist.find_node("s2");
  EXPECT_TRUE(stages_to(g.netlist, s2, Transition::kFall, opts).empty());
  // While its rise through the load no longer has a release trigger.
  EXPECT_TRUE(stages_to(g.netlist, s2, Transition::kRise, opts).empty());
}

TEST(FixedValues, PersistentPinActsAsValueSource) {
  // Netlist-resident pins (set_fixed / the `@set` .sim record) behave
  // like ExtractOptions::fixed_values, without any per-run options.
  CircuitBuilder b(Style::kNmos);
  const NodeId sel = b.input("sel");
  const NodeId a = b.node("a");
  const NodeId out = b.node("out");
  b.pass(a, out, sel);
  b.inverter(out, "obs");
  Netlist& nl = b.netlist();
  nl.set_fixed(a, true);

  const auto stages = stages_to(nl, out, Transition::kRise);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].source, a);
  EXPECT_EQ(nl.device(stages[0].trigger).gate, sel);

  // Per-run options take precedence over the netlist attribute.
  ExtractOptions opts;
  opts.fixed_values[a] = false;
  EXPECT_TRUE(stages_to(nl, out, Transition::kRise, opts).empty());
}

TEST(FixedValues, AnalyzerRespectsPins) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = pass_chain(Style::kNmos, 3);
  AnalyzerOptions opts;
  opts.extract.fixed_values[g.high_inputs[0]] = true;  // sel pinned high
  TimingAnalyzer an(g.netlist, tech, model, opts);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  EXPECT_TRUE(an.arrival(g.output, Transition::kRise).has_value());
}

TEST(FixedValues, ConductionPredicatesHonorPins) {
  const GeneratedCircuit g = pass_chain(Style::kNmos, 1);
  const NodeId sel = g.high_inputs[0];
  DeviceId pass = DeviceId::invalid();
  for (DeviceId d : g.netlist.device_ids()) {
    if (g.netlist.device(d).gate == sel) pass = d;
  }
  ASSERT_TRUE(pass.valid());
  ExtractOptions low;
  low.fixed_values[sel] = false;
  ExtractOptions high;
  high.fixed_values[sel] = true;
  EXPECT_FALSE(can_conduct(g.netlist, low, pass));
  EXPECT_TRUE(can_conduct(g.netlist, high, pass));
  EXPECT_TRUE(always_on(g.netlist, high, pass));
  EXPECT_FALSE(always_on(g.netlist, low, pass));
  EXPECT_TRUE(can_conduct(g.netlist, pass)) << "unpinned default";
}

}  // namespace
}  // namespace sldm
