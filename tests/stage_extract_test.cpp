// Tests for stage extraction: conduction predicates, path enumeration,
// triggers, release stages, and the electrical stage conversion.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/stage_extract.h"
#include "util/units.h"

namespace sldm {
namespace {

using namespace units;

TEST(Conduction, Predicates) {
  Netlist nl;
  const NodeId vdd = nl.mark_power("vdd");
  const NodeId gnd = nl.mark_ground("gnd");
  const NodeId sig = nl.add_node("sig");
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");

  const DeviceId normal = nl.add_transistor(TransistorType::kNEnhancement,
                                            sig, a, b, 8 * um, 4 * um);
  const DeviceId dead = nl.add_transistor(TransistorType::kNEnhancement, gnd,
                                          a, b, 8 * um, 4 * um);
  const DeviceId dep =
      nl.add_transistor(TransistorType::kNDepletion, b, b, vdd, 4 * um,
                        8 * um);
  const DeviceId pseudo = nl.add_transistor(TransistorType::kPEnhancement,
                                            gnd, b, vdd, 6 * um, 3 * um);
  const DeviceId pdead = nl.add_transistor(TransistorType::kPEnhancement,
                                           vdd, a, b, 6 * um, 3 * um);

  EXPECT_TRUE(can_conduct(nl, normal));
  EXPECT_FALSE(can_conduct(nl, dead));
  EXPECT_TRUE(can_conduct(nl, dep));
  EXPECT_TRUE(can_conduct(nl, pseudo));
  EXPECT_FALSE(can_conduct(nl, pdead));

  EXPECT_FALSE(always_on(nl, normal));
  EXPECT_TRUE(always_on(nl, dep));
  EXPECT_TRUE(always_on(nl, pseudo));
}

TEST(StageExtract, NmosInverterFallStage) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  const NodeId out = g.output;
  const auto stages = stages_to(g.netlist, out, Transition::kFall);
  ASSERT_EQ(stages.size(), 1u);
  const TimingStage& s = stages[0];
  EXPECT_EQ(s.destination, out);
  EXPECT_TRUE(g.netlist.node(s.source).is_ground);
  EXPECT_EQ(s.path.size(), 1u);
  EXPECT_EQ(g.netlist.device(s.trigger).gate, g.input);
  EXPECT_EQ(s.trigger_gate_dir, Transition::kRise);
  EXPECT_FALSE(s.trigger_is_release);
}

TEST(StageExtract, NmosInverterRiseIsReleaseStage) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  const auto stages = stages_to(g.netlist, g.output, Transition::kRise);
  ASSERT_EQ(stages.size(), 1u);
  const TimingStage& s = stages[0];
  EXPECT_TRUE(s.trigger_is_release);
  EXPECT_TRUE(g.netlist.node(s.source).is_power);
  EXPECT_EQ(s.trigger_gate_dir, Transition::kFall)
      << "the pull-down's gate falling releases the node";
  ASSERT_EQ(s.path.size(), 1u);
  EXPECT_EQ(g.netlist.device(s.path[0]).type, TransistorType::kNDepletion);
}

TEST(StageExtract, CmosInverterBothDirectionsAreOnTriggers) {
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 1, 1);
  const auto fall = stages_to(g.netlist, g.output, Transition::kFall);
  ASSERT_EQ(fall.size(), 1u);
  EXPECT_FALSE(fall[0].trigger_is_release);
  EXPECT_EQ(fall[0].trigger_gate_dir, Transition::kRise);

  const auto rise = stages_to(g.netlist, g.output, Transition::kRise);
  ASSERT_EQ(rise.size(), 1u);
  EXPECT_FALSE(rise[0].trigger_is_release);
  EXPECT_EQ(rise[0].trigger_gate_dir, Transition::kFall);
  EXPECT_EQ(g.netlist.device(rise[0].trigger).type,
            TransistorType::kPEnhancement);
}

TEST(StageExtract, NandSeriesStackYieldsOneStagePerTrigger) {
  const GeneratedCircuit g = nand_chain(Style::kCmos, 2);
  const NodeId y = *g.netlist.find_node("y");
  const auto fall = stages_to(g.netlist, y, Transition::kFall);
  // One pull-down path with two series devices -> two ON-trigger stages.
  ASSERT_EQ(fall.size(), 2u);
  EXPECT_EQ(fall[0].path.size(), 2u);
  EXPECT_EQ(fall[1].path.size(), 2u);
  EXPECT_NE(fall[0].trigger, fall[1].trigger);

  // Two parallel p pull-ups -> two single-device rise stages.
  const auto rise = stages_to(g.netlist, y, Transition::kRise);
  ASSERT_EQ(rise.size(), 2u);
  for (const auto& s : rise) EXPECT_EQ(s.path.size(), 1u);
}

TEST(StageExtract, PassChainPathsIncludeEveryPrefix) {
  const GeneratedCircuit g = pass_chain(Style::kNmos, 3);
  // The final chain node p3 falls through driver + 3 passes: the path
  // has 4 devices and 4 potential triggers.
  const NodeId p3 = *g.netlist.find_node("p3");
  const auto stages = stages_to(g.netlist, p3, Transition::kFall);
  ASSERT_EQ(stages.size(), 4u);
  for (const auto& s : stages) {
    EXPECT_EQ(s.path.size(), 4u);
    EXPECT_TRUE(g.netlist.node(s.source).is_ground);
  }
}

TEST(StageExtract, PrechargedNodeIsARiseSource) {
  const GeneratedCircuit g = manchester_carry(Style::kNmos, 2);
  const NodeId c1 = *g.netlist.find_node("c1");
  const auto fall = stages_to(g.netlist, c1, Transition::kFall);
  // Discharge paths reach ground through the g0 pull-down and the
  // propagate pass chain.
  ASSERT_FALSE(fall.empty());
  bool has_long_path = false;
  for (const auto& s : fall) {
    if (s.path.size() == 2u) has_long_path = true;
  }
  EXPECT_TRUE(has_long_path);
}

TEST(StageExtract, RailsAndInputsAreNotDestinations) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  EXPECT_TRUE(stages_to(g.netlist, g.input, Transition::kRise).empty());
  EXPECT_TRUE(
      stages_to(g.netlist, *g.netlist.power_node(), Transition::kRise)
          .empty());
}

TEST(StageExtract, DepthLimitPrunesLongPaths) {
  const GeneratedCircuit g = pass_chain(Style::kNmos, 6);
  const NodeId p6 = *g.netlist.find_node("p6");
  ExtractOptions opts;
  opts.max_depth = 3;  // driver + 6 passes = 7 > 3
  EXPECT_TRUE(stages_to(g.netlist, p6, Transition::kFall, opts).empty());
}

TEST(StageExtract, ExtractAllCoversEveryInternalNode) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 3, 1);
  const auto all = extract_all_stages(g.netlist);
  // Each of the three stage outputs has one fall and one rise stage;
  // dummy loads add more.  Every destination must be internal.
  EXPECT_GE(all.size(), 6u);
  for (const auto& s : all) {
    EXPECT_FALSE(g.netlist.node(s.destination).is_input);
    EXPECT_FALSE(g.netlist.is_rail(s.destination));
  }
}

TEST(MakeStage, ResistancesAndCapsComeFromTech) {
  const Tech tech = nmos4();
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  const auto stages = stages_to(g.netlist, g.output, Transition::kFall);
  ASSERT_EQ(stages.size(), 1u);
  const Stage s = make_stage(g.netlist, tech, stages[0], 2e-9);
  ASSERT_EQ(s.elements.size(), 1u);
  EXPECT_DOUBLE_EQ(s.input_slope, 2e-9);
  EXPECT_EQ(s.output_dir, Transition::kFall);
  const Transistor& pd = g.netlist.device(stages[0].path[0]);
  EXPECT_DOUBLE_EQ(s.elements[0].resistance,
                   tech.resistance(pd, Transition::kFall));
  EXPECT_DOUBLE_EQ(s.elements[0].cap,
                   tech.node_capacitance(g.netlist, g.output));
}

TEST(MakeStage, ReleaseStageUsesLoadElementAsTrigger) {
  const Tech tech = nmos4();
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  const auto stages = stages_to(g.netlist, g.output, Transition::kRise);
  ASSERT_EQ(stages.size(), 1u);
  const Stage s = make_stage(g.netlist, tech, stages[0], 0.0);
  EXPECT_EQ(s.trigger_index, 0u);
  EXPECT_EQ(s.elements[0].type, TransistorType::kNDepletion);
}

TEST(StageExtract, InputSourcedPathsAreSourceTriggered) {
  // A chip input feeding straight through a pass transistor: the
  // input's own edge must appear as a trigger, in addition to the pass
  // gate's.
  CircuitBuilder b(Style::kNmos);
  const NodeId data = b.input("data");
  const NodeId sel = b.input("sel");
  const NodeId out = b.node("out");
  b.pass(data, out, sel);
  b.inverter(out, "obs");
  const Netlist& nl = b.netlist();

  const auto stages = stages_to(nl, out, Transition::kRise);
  ASSERT_EQ(stages.size(), 2u);
  int source_triggered = 0;
  int gate_triggered = 0;
  for (const auto& s : stages) {
    if (s.source_triggered) {
      ++source_triggered;
      EXPECT_EQ(s.source, data);
      EXPECT_EQ(s.trigger_gate_dir, Transition::kRise);
      EXPECT_NE(describe(nl, s).find("driven by data"), std::string::npos);
    } else {
      ++gate_triggered;
      EXPECT_EQ(nl.device(s.trigger).gate, sel);
    }
  }
  EXPECT_EQ(source_triggered, 1);
  EXPECT_EQ(gate_triggered, 1);
}

TEST(Describe, MentionsEndpointsAndTrigger) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  const auto stages = stages_to(g.netlist, g.output, Transition::kFall);
  ASSERT_EQ(stages.size(), 1u);
  const std::string text = describe(g.netlist, stages[0]);
  EXPECT_NE(text.find("fall"), std::string::npos);
  EXPECT_NE(text.find("gnd"), std::string::npos);
  EXPECT_NE(text.find("triggered by in"), std::string::npos);
}

}  // namespace
}  // namespace sldm
