// The batch-kernel contract (delay/model.h): for every model,
// estimate_batch over a StageStore must reproduce, bit for bit, what
// estimate() returns for the materialized stage.  Exercised over the
// stage sets of every circuit generator in src/gen, plus the batch-
// boundary edge cases (empty batch, single stage, repeated ids in a
// batch larger than the store) and the base-class scalar fallback.
#include <gtest/gtest.h>

#include <vector>

#include "delay/bounds.h"
#include "delay/lumped.h"
#include "delay/rctree.h"
#include "delay/slope.h"
#include "delay/stage_store.h"
#include "delay/unit.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/analyzer.h"

namespace sldm {
namespace {

/// One circuit per generator in src/gen (both styles, so release stages
/// and depletion loads land in the store too).
std::vector<GeneratedCircuit> generator_suite() {
  std::vector<GeneratedCircuit> out;
  out.push_back(inverter_chain(Style::kCmos, 8, 3));
  out.push_back(inverter_chain(Style::kNmos, 6, 2));
  out.push_back(nand_chain(Style::kCmos, 3));
  out.push_back(nor_chain(Style::kNmos, 3));
  out.push_back(pass_chain(Style::kNmos, 5));
  out.push_back(barrel_shifter(Style::kCmos, 4));
  out.push_back(manchester_carry(Style::kNmos, 6));
  out.push_back(precharged_bus(Style::kCmos, 5));
  out.push_back(driver_chain(Style::kCmos, 4, 2.5, 80.0));
  out.push_back(address_decoder(Style::kCmos, 3));
  out.push_back(pla(Style::kCmos, 4, 5, 3, 0x1234));
  out.push_back(shift_register(Style::kCmos, 3));
  out.push_back(sram_read_column(Style::kNmos, 6));
  out.push_back(random_logic(Style::kCmos, 6, 10, 0xABCD));
  return out;
}

const Tech& tech_for(const GeneratedCircuit& g) {
  static const Tech nmos = nmos4();
  static const Tech cmos = cmos3();
  return g.style == Style::kNmos ? nmos : cmos;
}

/// Deterministic non-trivial slope for batch item i.
Seconds slope_for(std::size_t i) {
  return 0.1e-9 + static_cast<Seconds>(i % 7) * 0.35e-9;
}

/// The models under contract.  The slope model gets unit tables (every
/// trigger type covered); bounds gets both modes.
struct ModelSet {
  LumpedRcModel lumped;
  RcTreeModel rctree;
  SlopeModel slope{SlopeTables::unit()};
  RphBoundsModel upper{RphBoundsModel::Mode::kUpper};
  RphBoundsModel lower{RphBoundsModel::Mode::kLower};
  UnitDelayModel unit{1e-9};

  std::vector<const DelayModel*> all() const {
    return {&lumped, &rctree, &slope, &upper, &lower, &unit};
  }
};

/// A model with no estimate_batch override: exercises the base-class
/// materialize-and-delegate fallback against the same scalar reference.
class FallbackModel : public DelayModel {
 public:
  std::string name() const override { return "fallback"; }
  DelayEstimate estimate(const Stage& stage) const override {
    return inner_.estimate(stage);
  }
  DelayEstimate estimate_audited(const Stage& stage,
                                 DelayAudit& audit) const override {
    return inner_.estimate_audited(stage, audit);
  }

 private:
  RcTreeModel inner_;
};

/// Scalar reference: estimate() of the materialized stage, one by one.
std::vector<DelayEstimate> scalar_reference(
    const DelayModel& model, const StageStore& store,
    const std::vector<StageStore::StageId>& ids,
    const std::vector<Seconds>& slopes) {
  std::vector<DelayEstimate> out(ids.size());
  Stage scratch;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    store.materialize(ids[i], slopes[i], scratch);
    out[i] = model.estimate(scratch);
  }
  return out;
}

void expect_bit_identical(const std::vector<DelayEstimate>& scalar,
                          const std::vector<DelayEstimate>& batch,
                          const std::string& what) {
  ASSERT_EQ(scalar.size(), batch.size()) << what;
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    // Bitwise equality, not tolerance: the kernels must replicate the
    // scalar arithmetic exactly.
    EXPECT_EQ(scalar[i].delay, batch[i].delay) << what << " item " << i;
    EXPECT_EQ(scalar[i].output_slope, batch[i].output_slope)
        << what << " item " << i;
  }
}

TEST(BatchKernel, BitIdenticalToScalarAcrossGeneratorsAndModels) {
  const ModelSet models;
  const RcTreeModel extraction_model;  // store content is model-free
  for (const GeneratedCircuit& g : generator_suite()) {
    const TimingAnalyzer an(g.netlist, tech_for(g), extraction_model);
    const StageStore& store = an.stage_store();
    ASSERT_GT(store.size(), 0u) << g.name;

    std::vector<StageStore::StageId> ids;
    std::vector<Seconds> slopes;
    for (std::size_t s = 0; s < store.size(); ++s) {
      ids.push_back(static_cast<StageStore::StageId>(s));
      slopes.push_back(slope_for(s));
    }
    for (const DelayModel* model : models.all()) {
      std::vector<DelayEstimate> batch(ids.size());
      model->estimate_batch(store, ids, slopes, batch);
      expect_bit_identical(scalar_reference(*model, store, ids, slopes),
                           batch, g.name + "/" + model->name());
    }
  }
}

TEST(BatchKernel, StoreCachesMatchStandaloneStageTotals) {
  // The store's cached totals are the same doubles the materialized
  // Stage derives for itself (satellite: totals are cached, not
  // re-summed, on both paths).
  const RcTreeModel model;
  const GeneratedCircuit g = barrel_shifter(Style::kCmos, 4);
  const TimingAnalyzer an(g.netlist, tech_for(g), model);
  const StageStore& store = an.stage_store();
  for (std::size_t s = 0; s < store.size(); ++s) {
    const auto id = static_cast<StageStore::StageId>(s);
    const Stage stage = store.materialize(id, 1e-9);
    EXPECT_EQ(store.total_resistance(id), stage.total_resistance());
    EXPECT_EQ(store.total_cap(id), stage.total_cap());
    EXPECT_EQ(store.destination_cap(id), stage.destination_cap());
    EXPECT_EQ(store.length(id), stage.elements.size());
  }
}

TEST(BatchKernel, EmptyBatchIsANoOp) {
  const ModelSet models;
  const RcTreeModel extraction_model;
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 4, 1);
  const TimingAnalyzer an(g.netlist, tech_for(g), extraction_model);
  for (const DelayModel* model : models.all()) {
    std::vector<StageStore::StageId> ids;
    std::vector<Seconds> slopes;
    std::vector<DelayEstimate> out;
    model->estimate_batch(an.stage_store(), ids, slopes, out);
    EXPECT_TRUE(out.empty()) << model->name();
  }
}

TEST(BatchKernel, SingleStageBatch) {
  const ModelSet models;
  const RcTreeModel extraction_model;
  const GeneratedCircuit g = nand_chain(Style::kCmos, 3);
  const TimingAnalyzer an(g.netlist, tech_for(g), extraction_model);
  const StageStore& store = an.stage_store();
  const std::vector<StageStore::StageId> ids = {0};
  const std::vector<Seconds> slopes = {2e-9};
  for (const DelayModel* model : models.all()) {
    std::vector<DelayEstimate> batch(1);
    model->estimate_batch(store, ids, slopes, batch);
    expect_bit_identical(scalar_reference(*model, store, ids, slopes),
                         batch, model->name());
  }
}

TEST(BatchKernel, RepeatedIdsBatchLargerThanStore) {
  // Ids may repeat and a batch may hold more items than the store holds
  // stages: the kernels are pure per item.  Repeats with different
  // slopes also verify no per-stage state leaks between items.
  const ModelSet models;
  const RcTreeModel extraction_model;
  const GeneratedCircuit g = pass_chain(Style::kNmos, 5);
  const TimingAnalyzer an(g.netlist, tech_for(g), extraction_model);
  const StageStore& store = an.stage_store();
  std::vector<StageStore::StageId> ids;
  std::vector<Seconds> slopes;
  const std::size_t n = 3 * store.size() + 2;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<StageStore::StageId>(i % store.size()));
    slopes.push_back(slope_for(i));
  }
  for (const DelayModel* model : models.all()) {
    std::vector<DelayEstimate> batch(n);
    model->estimate_batch(store, ids, slopes, batch);
    expect_bit_identical(scalar_reference(*model, store, ids, slopes),
                         batch, model->name());
  }
}

TEST(BatchKernel, BaseClassFallbackMatchesScalar) {
  const FallbackModel model;
  const RcTreeModel extraction_model;
  const GeneratedCircuit g = random_logic(Style::kCmos, 5, 8, 0x77);
  const TimingAnalyzer an(g.netlist, tech_for(g), extraction_model);
  const StageStore& store = an.stage_store();
  std::vector<StageStore::StageId> ids;
  std::vector<Seconds> slopes;
  for (std::size_t s = 0; s < store.size(); ++s) {
    ids.push_back(static_cast<StageStore::StageId>(s));
    slopes.push_back(slope_for(s));
  }
  std::vector<DelayEstimate> batch(ids.size());
  model.estimate_batch(store, ids, slopes, batch);
  expect_bit_identical(scalar_reference(model, store, ids, slopes), batch,
                       "fallback");
}

}  // namespace
}  // namespace sldm
