// Tests for k-worst-path enumeration.
#include <gtest/gtest.h>

#include "delay/rctree.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "util/contracts.h"

namespace sldm {
namespace {

TEST(KWorstPaths, ChainHasExactlyOnePath) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 3, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const auto worst = an.worst_arrival(true);
  ASSERT_TRUE(worst.has_value());
  const auto paths = an.k_worst_paths(worst->node, worst->dir, 5);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].steps.size(), 4u);  // input + 3 stages
  EXPECT_NEAR(paths[0].arrival, worst->time, 1e-15);
}

TEST(KWorstPaths, FirstPathMatchesCriticalPath) {
  const Tech tech = cmos3();
  const RcTreeModel model;
  const GeneratedCircuit g = nand_chain(Style::kCmos, 3);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  const auto worst = an.worst_arrival(true);
  ASSERT_TRUE(worst.has_value());
  const auto paths = an.k_worst_paths(worst->node, worst->dir, 3);
  ASSERT_FALSE(paths.empty());
  const auto crit = an.critical_path(worst->node, worst->dir);
  ASSERT_EQ(paths[0].steps.size(), crit.size());
  for (std::size_t i = 0; i < crit.size(); ++i) {
    EXPECT_EQ(paths[0].steps[i].node, crit[i].node) << i;
    EXPECT_EQ(paths[0].steps[i].dir, crit[i].dir) << i;
  }
  EXPECT_NEAR(paths[0].arrival, worst->time, 1e-15);
}

TEST(KWorstPaths, MultiplePathsThroughPassNetworkAreRanked) {
  // A NAND gate observed through its output inverter: the y-fall event
  // has two triggers (a0 and a1), so with both inputs seeded there are
  // at least two distinct event paths to the output.
  const Tech tech = cmos3();
  const RcTreeModel model;
  const GeneratedCircuit g = nand_chain(Style::kCmos, 2);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_all_input_events(1e-9);
  an.run();
  const auto paths = an.k_worst_paths(g.output, Transition::kRise, 10);
  EXPECT_GE(paths.size(), 2u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].arrival, paths[i].arrival) << "sorted desc";
  }
  // Paths must be distinct event chains.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    bool differs = paths[i].steps.size() != paths[0].steps.size();
    if (!differs) {
      for (std::size_t s = 0; s < paths[0].steps.size(); ++s) {
        if (paths[i].steps[s].node != paths[0].steps[s].node ||
            paths[i].steps[s].dir != paths[0].steps[s].dir ||
            paths[i].steps[s].description != paths[0].steps[s].description) {
          differs = true;
          break;
        }
      }
    }
    EXPECT_TRUE(differs) << "path " << i << " duplicates path 0";
  }
}

TEST(KWorstPaths, KTruncatesTheList) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = barrel_shifter(Style::kNmos, 3);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_all_input_events(1e-9);
  an.run();
  const auto all = an.k_worst_paths(g.output, Transition::kRise, 50);
  const auto two = an.k_worst_paths(g.output, Transition::kRise, 2);
  EXPECT_LE(two.size(), 2u);
  if (all.size() >= 2) {
    ASSERT_EQ(two.size(), 2u);
    EXPECT_NEAR(two[0].arrival, all[0].arrival, 1e-15);
    EXPECT_NEAR(two[1].arrival, all[1].arrival, 1e-15);
  }
}

TEST(KWorstPaths, WorkBoundIsHonored) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = barrel_shifter(Style::kNmos, 4);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_all_input_events(1e-9);
  an.run();
  TimingAnalyzer::PathQueryOptions tight;
  tight.max_explored = 3;
  const auto paths =
      an.k_worst_paths(g.output, Transition::kRise, 10, tight);
  // With almost no exploration budget, few (possibly zero) paths.
  EXPECT_LE(paths.size(), 3u);
}

TEST(KWorstPaths, NoPathsToUnreachableEvent) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 2, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  an.run();
  // s2 never falls under a rise-only seed.
  const NodeId s2 = *g.netlist.find_node("s2");
  EXPECT_TRUE(an.k_worst_paths(s2, Transition::kFall, 5).empty());
}

TEST(KWorstPaths, ValidatesArguments) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
  EXPECT_THROW(an.k_worst_paths(g.output, Transition::kFall, 1),
               ContractViolation)
      << "must run() first";
  an.run();
  EXPECT_THROW(an.k_worst_paths(g.output, Transition::kFall, 0),
               ContractViolation);
}

}  // namespace
}  // namespace sldm
