// Chaos suite for the fault-injection subsystem (util/failpoint.h) and
// the crash-safety contracts of `sldm serve`:
//
//   * failpoint grammar and firing semantics are deterministic --
//     counted (`*N`) and probabilistic (`*1inK@seed`) schedules fire on
//     exactly the same visit indices every run;
//   * every injected fault at an I/O boundary (ledger append, snapshot
//     read/write, cache insert/evict, thread-pool submit) surfaces as
//     the boundary's documented failure, never a crash, and leaves the
//     touched state consistent;
//   * under a fixed-seed randomized schedule the pipe server still
//     answers exactly one envelope per request line, in a byte-wise
//     reproducible sequence (workers=1);
//   * a SIGTERM drain on the TCP front end answers in-flight requests
//     and exits 0.
//
// Deliberately excluded from the tsan stage of scripts/check.sh: the
// SIGTERM test raises real signals, which sanitizer runtimes intercept
// with their own handlers.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "design/compiled_design.h"
#include "design/snapshot.h"
#include "netlist/sim_io.h"
#include "serve/server.h"
#include "serve/service.h"
#include "tech/tech.h"
#include "util/failpoint.h"
#include "util/ledger.h"
#include "util/metrics.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace sldm {
namespace {

/// Every test disarms on exit so suites sharing the binary start
/// clean; the process-wide registry is exactly why this guard exists.
class FailpointGuard {
 public:
  FailpointGuard() { FailpointRegistry::instance().clear(); }
  ~FailpointGuard() { FailpointRegistry::instance().clear(); }
};

class HubGuard {
 public:
  HubGuard() { reset(); }
  ~HubGuard() { reset(); }

 private:
  static void reset() {
    TelemetryHub::instance().disable();
    TelemetryHub::instance().clear();
  }
};

class TempFile {
 public:
  TempFile(const std::string& name, const std::string& contents)
      : path_(::testing::TempDir() + "sldm_chaos_test_" + name) {
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr const char* kInverterSim =
    "e in gnd out 4 8\n"
    "d out out vdd 8 4\n"
    "@in in\n"
    "@out out\n";

constexpr const char* kChainSim =
    "e in gnd s1 4 8\n"
    "d s1 s1 vdd 8 4\n"
    "e s1 gnd out 4 8\n"
    "d out out vdd 8 4\n"
    "@in in\n"
    "@out out\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --- grammar --------------------------------------------------------------

TEST(FailpointGrammar, ParsesEveryActionAndModifier) {
  const auto terms = FailpointRegistry::parse_spec(
      "a=error,b=delay:25,c=partial,d=error*3,e=partial*1in4@99");
  ASSERT_EQ(terms.size(), 5u);
  EXPECT_EQ(terms[0].site, "a");
  EXPECT_EQ(terms[0].action, FailpointAction::kError);
  EXPECT_EQ(terms[0].max_hits, UINT64_MAX);
  EXPECT_EQ(terms[1].action, FailpointAction::kDelay);
  EXPECT_EQ(terms[1].delay_ms, 25);
  EXPECT_EQ(terms[2].action, FailpointAction::kPartial);
  EXPECT_EQ(terms[3].max_hits, 3u);
  EXPECT_EQ(terms[4].one_in, 4u);
  EXPECT_EQ(terms[4].seed, 99u);
}

TEST(FailpointGrammar, RejectsMalformedTermsWithTheOffendingText) {
  for (const char* bad : {
           "nosuchaction",           // no '='
           "x=",                     // empty action
           "x=explode",              // unknown action
           "x=delay",                // delay without ms
           "x=delay:-5",             // negative ms
           "x=delay:999999999",      // ms out of range
           "x=error*",               // empty modifier
           "x=error*0",              // zero count
           "x=error*1in0@7",         // K out of range
           "x=error*1in4",           // probabilistic without seed
           "=error",                 // empty site
       }) {
    EXPECT_THROW(FailpointRegistry::parse_spec(bad), Error) << bad;
  }
  // An empty spec is a valid no-op (how the CLI disarms).
  EXPECT_TRUE(FailpointRegistry::parse_spec("").empty());
}

// --- firing semantics -----------------------------------------------------

TEST(FailpointFiring, DisarmedProcessNeverFires) {
  FailpointGuard guard;
  EXPECT_FALSE(failpoints_armed());
  EXPECT_FALSE(failpoint("chaos.nowhere"));
}

TEST(FailpointFiring, CountedErrorFiresExactlyNTimes) {
  FailpointGuard guard;
  FailpointRegistry::instance().configure("chaos.counted=error*2");
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      failpoint("chaos.counted");
    } catch (const FailpointError&) {
      ++fires;
    }
  }
  EXPECT_EQ(fires, 2);
  const FailpointCounts counts =
      FailpointRegistry::instance().counts("chaos.counted");
  EXPECT_EQ(counts.visits, 10u);
  EXPECT_EQ(counts.fires, 2u);
}

TEST(FailpointFiring, PartialReturnsTrueAndErrorThrows) {
  FailpointGuard guard;
  FailpointRegistry::instance().configure(
      "chaos.partial=partial,chaos.error=error");
  EXPECT_TRUE(failpoint("chaos.partial"));
  EXPECT_THROW(failpoint("chaos.error"), FailpointError);
  // Unconfigured sites stay cold even while the process is armed.
  EXPECT_FALSE(failpoint("chaos.other"));
}

TEST(FailpointFiring, ProbabilisticScheduleIsSeedDeterministic) {
  FailpointGuard guard;
  const auto fire_indices = [] {
    FailpointRegistry::instance().configure("chaos.prob=error*1in4@1234");
    std::vector<int> fired;
    for (int i = 0; i < 200; ++i) {
      try {
        failpoint("chaos.prob");
      } catch (const FailpointError&) {
        fired.push_back(i);
      }
    }
    return fired;
  };
  const std::vector<int> first = fire_indices();
  const std::vector<int> second = fire_indices();
  EXPECT_EQ(first, second);
  // ~1 in 4 of 200: the exact count is pinned by the seed; it must at
  // least be plausible and nonzero, or the modifier is inert.
  EXPECT_GT(first.size(), 20u);
  EXPECT_LT(first.size(), 120u);
  // A different seed fires on a different schedule.
  FailpointRegistry::instance().configure("chaos.prob=error*1in4@77");
  std::vector<int> other;
  for (int i = 0; i < 200; ++i) {
    try {
      failpoint("chaos.prob");
    } catch (const FailpointError&) {
      other.push_back(i);
    }
  }
  EXPECT_NE(first, other);
}

// --- boundary: ledger -----------------------------------------------------

TEST(ChaosLedger, InjectedAppendFailureIsCountedNotFatal) {
  FailpointGuard guard;
  const std::string path = ::testing::TempDir() + "sldm_chaos_ledger.jsonl";
  std::remove(path.c_str());
  LedgerRecord r;
  r.kind = "run";
  r.outcome = "ok";

  const std::uint64_t before = snapshot_process_metrics()
                                   .counter("ledger.append_failures")
                                   .value();
  FailpointRegistry::instance().configure("ledger.append=error");
  EXPECT_THROW(append_ledger_record(path, r), Error);
  EXPECT_FALSE(try_append_ledger_record(path, r));
  const std::uint64_t after = snapshot_process_metrics()
                                  .counter("ledger.append_failures")
                                  .value();
  EXPECT_EQ(after - before, 1u);

  // Disarmed, the same append succeeds and the file parses whole.
  FailpointRegistry::instance().clear();
  EXPECT_TRUE(try_append_ledger_record(path, r));
  EXPECT_EQ(read_ledger_file(path).size(), 1u);
  std::remove(path.c_str());
}

TEST(ChaosLedger, PartialAppendLeavesExactlyTheTornHalfLine) {
  FailpointGuard guard;
  const std::string path =
      ::testing::TempDir() + "sldm_chaos_ledger_torn.jsonl";
  std::remove(path.c_str());
  LedgerRecord r;
  r.kind = "run";
  r.unix_ms = 1;  // fixed so the rendered line (and its half) is stable
  r.outcome = "ok";
  const std::string line = r.to_json();

  FailpointRegistry::instance().configure("ledger.append=partial");
  EXPECT_THROW(append_ledger_record(path, r), Error);
  EXPECT_EQ(read_file(path), line.substr(0, line.size() / 2));
  // The torn line is not valid JSON, exactly like a mid-append crash;
  // the reader reports it instead of misparsing.
  EXPECT_THROW(read_ledger_file(path), Error);
  std::remove(path.c_str());
}

// --- boundary: snapshot ---------------------------------------------------

TEST(ChaosSnapshot, WriteAndReadFaultsSurfaceAsErrorsNotCrashes) {
  FailpointGuard guard;
  TempFile sim("snapshot_inv.sim", kInverterSim);
  Netlist nl = read_sim_file(sim.path());
  const auto design = CompiledDesign::compile(nl, nmos4());
  const std::string path = ::testing::TempDir() + "sldm_chaos.sldc";
  std::remove(path.c_str());

  FailpointRegistry::instance().configure("snapshot.write=error");
  EXPECT_THROW(save_design_file(*design, path), Error);

  // A half-written snapshot (injected partial, i.e. a crash mid-write)
  // must be rejected by the loader's integrity checks.
  FailpointRegistry::instance().configure("snapshot.write=partial");
  EXPECT_THROW(save_design_file(*design, path), Error);
  EXPECT_THROW(load_design_file(path), Error);

  // A good snapshot read through an injected truncation also fails
  // cleanly; disarmed, the same file loads.
  FailpointRegistry::instance().clear();
  save_design_file(*design, path);
  FailpointRegistry::instance().configure("snapshot.read=partial");
  EXPECT_THROW(load_design_file(path), Error);
  FailpointRegistry::instance().configure("snapshot.read=error");
  EXPECT_THROW(load_design_file(path), Error);
  FailpointRegistry::instance().clear();
  EXPECT_NO_THROW(load_design_file(path));
  std::remove(path.c_str());
}

// --- boundary: design cache ----------------------------------------------

TEST(ChaosCache, RefusedInsertLeavesTheCacheConsistent) {
  FailpointGuard guard;
  HubGuard hub;
  TimingService service;
  TempFile sim("cache_insert.sim", kInverterSim);
  FailpointRegistry::instance().configure("cache.insert=error");
  const std::string r = service.handle_line(
      "{\"kind\":\"load\",\"path\":\"" + sim.path() +
      "\",\"model\":\"lumped\"}");
  EXPECT_NE(r.find("\"error\":\"failed\""), std::string::npos) << r;
  EXPECT_EQ(service.design_count(), 0u);

  // Disarmed, the identical load succeeds and serves requests.
  FailpointRegistry::instance().clear();
  const std::string ok = service.handle_line(
      "{\"kind\":\"load\",\"path\":\"" + sim.path() +
      "\",\"model\":\"lumped\"}");
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;
  EXPECT_EQ(service.design_count(), 1u);
}

TEST(ChaosCache, RefusedEvictionLeavesEveryEntryServing) {
  FailpointGuard guard;
  HubGuard hub;
  ServeOptions options;
  options.cache_capacity = 1;
  TimingService service(options);
  TempFile a("cache_evict_a.sim", kInverterSim);
  TempFile b("cache_evict_b.sim", kChainSim);
  const std::string ra = service.handle_line(
      "{\"kind\":\"load\",\"path\":\"" + a.path() +
      "\",\"model\":\"lumped\"}");
  ASSERT_NE(ra.find("\"ok\":true"), std::string::npos) << ra;

  // The second load inserts, then the eviction of the LRU entry is
  // refused: the load reports failure but the cache must stay
  // consistent -- over capacity, with *both* designs still resolving.
  FailpointRegistry::instance().configure("cache.evict=error");
  const std::string rb = service.handle_line(
      "{\"kind\":\"load\",\"path\":\"" + b.path() +
      "\",\"model\":\"lumped\"}");
  EXPECT_NE(rb.find("\"error\":\"failed\""), std::string::npos) << rb;
  FailpointRegistry::instance().clear();
  EXPECT_EQ(service.design_count(), 2u);
  const std::string key = "\"design\":\"";
  const std::string fp_a = ra.substr(ra.find(key) + key.size(), 16);
  for (const std::string& fp : {fp_a}) {
    const std::string t = service.handle_line(
        "{\"kind\":\"time\",\"design\":\"" + fp + "\",\"model\":\"lumped\"}");
    EXPECT_NE(t.find("\"ok\":true"), std::string::npos) << t;
  }
}

// --- boundary: thread pool ------------------------------------------------

TEST(ChaosPool, RefusedSubmitIsAnsweredInlineWithOneEnvelope) {
  FailpointGuard guard;
  HubGuard hub;
  TimingService service;
  // workers=2 takes the real enqueue path; the first dispatch is
  // refused and must still produce exactly one envelope, inline.
  FailpointRegistry::instance().configure("pool.submit=error*1");
  std::istringstream in(
      "{\"id\":1,\"kind\":\"stats\"}\n"
      "{\"id\":2,\"kind\":\"shutdown\"}\n");
  std::ostringstream out;
  ServeLoopOptions options;
  options.workers = 2;
  EXPECT_EQ(serve_pipe(service, in, out, options), 0);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"id\":1,\"error\":\"failed\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"id\":2,\"kind\":\"shutdown\",\"ok\":true"),
            std::string::npos)
      << text;
}

TEST(ChaosPool, RefusedSubmitDuringParallelForDrainsInFlightTasks) {
  FailpointGuard guard;
  // Fire on the 3rd of 8 submits: tasks 1-2 are already in flight and
  // reference the closure below; parallel_for must drain them before
  // rethrowing (asan would flag the use-after-free this hardens
  // against).
  FailpointRegistry::instance().configure("pool.submit=error*1in3@5");
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  bool threw = false;
  try {
    parallel_for(pool, 64, [&ran](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  } catch (const FailpointError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_LT(ran.load(), 64);
}

// --- fixed-seed randomized schedule over the pipe server ------------------

/// One full pipe session under an armed schedule; returns stdout.
std::string chaos_session(const std::string& failpoints,
                          const std::string& input,
                          const std::string& ledger_path) {
  // The hub is process-wide and stats responses embed its aggregate;
  // a fresh session must not see its predecessor's snapshots.
  TelemetryHub::instance().clear();
  FailpointRegistry::instance().configure(failpoints);
  ServeOptions sopts;
  sopts.ledger_path = ledger_path;
  TimingService service(sopts);
  ServeLoopOptions lopts;
  lopts.workers = 1;  // inline dispatch: deterministic response order
  lopts.max_line_bytes = 4096;
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(serve_pipe(service, in, out, lopts), 0);
  FailpointRegistry::instance().clear();
  return out.str();
}

/// Strips the wall-clock-bearing tails -- the per-request "stats"
/// object and the hub "telemetry" aggregate (whose *.seconds gauges
/// and latency-histogram means are timing-dependent) -- so lines
/// compare byte-wise across runs.
std::string deterministic_prefix(const std::string& response) {
  auto pos = response.find(",\"stats\":");
  if (pos == std::string::npos) pos = response.find(",\"telemetry\":");
  return pos == std::string::npos ? response : response.substr(0, pos);
}

TEST(ChaosSchedule, FixedSeedScheduleAnswersEveryLineReproducibly) {
  FailpointGuard guard;
  HubGuard hub;
  TempFile inv("sched_inv.sim", kInverterSim);
  TempFile chain("sched_chain.sim", kChainSim);
  const std::string ledger =
      ::testing::TempDir() + "sldm_chaos_sched.jsonl";

  // The request mix: loads, times against a fingerprint resolved by a
  // first clean pass, garbage, oversized lines, explains.
  std::remove(ledger.c_str());
  TimingService probe;
  const std::string lr = probe.handle_line(
      "{\"kind\":\"load\",\"path\":\"" + inv.path() +
      "\",\"model\":\"lumped\"}");
  const std::string key = "\"design\":\"";
  ASSERT_NE(lr.find(key), std::string::npos) << lr;
  const std::string fp = lr.substr(lr.find(key) + key.size(), 16);

  std::ostringstream input;
  std::vector<int> expected_ids;  ///< ids recoverable from their lines
  int id = 0;
  int unparseable = 0;
  for (int round = 0; round < 6; ++round) {
    input << "{\"id\":" << ++id << ",\"kind\":\"load\",\"path\":\""
          << inv.path() << "\",\"model\":\"lumped\"}\n";
    expected_ids.push_back(id);
    input << "{\"id\":" << ++id << ",\"kind\":\"time\",\"design\":\"" << fp
          << "\",\"model\":\"lumped\"}\n";
    expected_ids.push_back(id);
    input << "{\"id\":" << ++id << ",\"kind\":\"explain\",\"design\":\""
          << fp << "\",\"model\":\"lumped\",\"node\":\"out\"}\n";
    expected_ids.push_back(id);
    // Unparseable line: still owed one envelope, but its id is
    // unrecoverable from broken JSON.
    input << "{\"id\":" << ++id << " broken json\n";
    ++unparseable;
    input << "{\"id\":" << ++id << ",\"kind\":\"frobnicate\"}\n";
    expected_ids.push_back(id);
    input << "{\"id\":" << ++id << ",\"kind\":\"load\",\"path\":\""
          << chain.path() << "\",\"model\":\"lumped\"}\n";
    expected_ids.push_back(id);
    input << "{\"id\":" << ++id << ",\"kind\":\"stats\"}\n";
    expected_ids.push_back(id);
  }
  const int lines = id;

  // The fixed-seed schedule: probabilistic faults at every boundary
  // the session crosses.
  const std::string schedule =
      "ledger.append=error*1in3@101,"
      "cache.insert=error*1in4@202,"
      "cache.evict=partial*1in2@303,"
      "pool.submit=error*1in5@404,"
      "serve.request=error*1in7@505";

  const std::string first =
      chaos_session(schedule, input.str(), ledger);
  // Exactly one envelope per request line, every line answered.
  EXPECT_EQ(std::count(first.begin(), first.end(), '\n'), lines);
  (void)unparseable;
  for (const int i : expected_ids) {
    EXPECT_NE(first.find("\"id\":" + std::to_string(i)), std::string::npos)
        << "no envelope for request " << i;
  }

  // Bit-reproducible: the same schedule over the same input yields the
  // same per-line responses (modulo wall-clock stats members).
  std::remove(ledger.c_str());
  const std::string second =
      chaos_session(schedule, input.str(), ledger);
  std::istringstream a(first), b(second);
  std::string la, lb;
  int lineno = 0;
  while (std::getline(a, la) && std::getline(b, lb)) {
    ++lineno;
    EXPECT_EQ(deterministic_prefix(la), deterministic_prefix(lb))
        << "line " << lineno;
  }

  // Whatever ledger lines survived the injected append failures parse
  // whole -- error appends refuse before writing, so no torn lines.
  EXPECT_NO_THROW(read_ledger_file(ledger));
  std::remove(ledger.c_str());
}

// --- SIGTERM drain --------------------------------------------------------

TEST(ChaosDrain, SigtermDrainsTheTcpServerToExitZero) {
  FailpointGuard guard;
  HubGuard hub;
  TimingService service;
  ServeLoopOptions options;
  options.workers = 2;
  TcpServer server(service, options, 0);
  const int port = server.port();
  int rc = -1;
  std::thread server_thread([&server, &rc] { rc = server.run(); });

  // A connected client with a request in flight: the drain must still
  // answer it before the server exits.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::string req = "{\"id\":1,\"kind\":\"stats\"}\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(req.size()));
  // Wait for the response first so the request is provably in flight
  // before the signal, then drain.
  std::string response;
  char c = 0;
  while (::recv(fd, &c, 1, 0) == 1 && c != '\n') response += c;
  EXPECT_NE(response.find("\"id\":1,\"kind\":\"stats\",\"ok\":true"),
            std::string::npos)
      << response;

  ASSERT_EQ(::raise(SIGTERM), 0);
  server_thread.join();
  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(service.shutdown_requested());
  ::close(fd);
}

}  // namespace
}  // namespace sldm
