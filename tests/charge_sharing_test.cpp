// Tests for charge-sharing analysis, including a cross-check against
// the analog simulator's actual redistribution behavior.
#include <gtest/gtest.h>

#include "analog/elaborate.h"
#include "analog/transient.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/charge_sharing.h"
#include "util/contracts.h"
#include "util/units.h"

namespace sldm {
namespace {

using namespace units;

TEST(ChargeSharing, RequiresPrechargedNode) {
  const Tech tech = nmos4();
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  EXPECT_THROW(analyze_charge_sharing(g.netlist, tech, g.output),
               ContractViolation);
}

TEST(ChargeSharing, IsolatedDynamicNodeKeepsItsLevel) {
  Netlist nl;
  nl.mark_power("vdd");
  nl.mark_ground("gnd");
  const NodeId dyn = nl.mark_precharged("dyn");
  nl.add_cap(dyn, 50 * fF);
  const Tech tech = nmos4();
  const auto r = analyze_charge_sharing(nl, tech, dyn);
  EXPECT_DOUBLE_EQ(r.shared_cap, 0.0);
  EXPECT_DOUBLE_EQ(r.v_after, tech.vdd());
  EXPECT_TRUE(r.sharing_nodes.empty());
  EXPECT_FALSE(r.fails(2.5));
}

TEST(ChargeSharing, TwoNodeRedistributionFormula) {
  // dyn (C1) -- pass -- empty (C2): V_after = Vdd * C1/(C1+C2), where
  // both caps include the pass transistor's diffusion contributions.
  Netlist nl;
  nl.mark_power("vdd");
  nl.mark_ground("gnd");
  const NodeId sel = nl.mark_input("sel");
  const NodeId dyn = nl.mark_precharged("dyn");
  const NodeId empty = nl.add_node("empty");
  nl.add_cap(dyn, 100 * fF);
  nl.add_cap(empty, 25 * fF);
  nl.add_transistor(TransistorType::kNEnhancement, sel, dyn, empty, 8 * um,
                    4 * um);
  const Tech tech = nmos4();
  const auto r = analyze_charge_sharing(nl, tech, dyn);
  const Farads c1 = tech.node_capacitance(nl, dyn);
  const Farads c2 = tech.node_capacitance(nl, empty);
  EXPECT_NEAR(r.node_cap, c1, 1e-21);
  EXPECT_NEAR(r.shared_cap, c2, 1e-21);
  EXPECT_NEAR(r.v_after, 5.0 * c1 / (c1 + c2), 1e-9);
  ASSERT_EQ(r.sharing_nodes.size(), 1u);
  EXPECT_EQ(r.sharing_nodes[0], empty);
}

TEST(ChargeSharing, RailPathsDoNotCountAsSharing) {
  // A pull-down to ground is a drive event, not charge sharing.
  Netlist nl;
  nl.mark_power("vdd");
  const NodeId gnd = nl.mark_ground("gnd");
  const NodeId gate = nl.mark_input("g");
  const NodeId dyn = nl.mark_precharged("dyn");
  nl.add_cap(dyn, 50 * fF);
  nl.add_transistor(TransistorType::kNEnhancement, gate, gnd, dyn, 8 * um,
                    4 * um);
  const auto r = analyze_charge_sharing(nl, nmos4(), dyn);
  EXPECT_DOUBLE_EQ(r.shared_cap, 0.0);
}

TEST(ChargeSharing, PermanentlyOffDevicesIgnored) {
  Netlist nl;
  nl.mark_power("vdd");
  const NodeId gnd = nl.mark_ground("gnd");
  const NodeId dyn = nl.mark_precharged("dyn");
  const NodeId island = nl.add_node("island");
  nl.add_cap(dyn, 50 * fF);
  nl.add_cap(island, 50 * fF);
  // Gate tied to ground: can never conduct, so no sharing.
  nl.add_transistor(TransistorType::kNEnhancement, gnd, dyn, island, 8 * um,
                    4 * um);
  const auto r = analyze_charge_sharing(nl, nmos4(), dyn);
  EXPECT_DOUBLE_EQ(r.shared_cap, 0.0);
}

TEST(ChargeSharing, DepthLimitStopsTheWalk) {
  Netlist nl;
  nl.mark_power("vdd");
  nl.mark_ground("gnd");
  const NodeId sel = nl.mark_input("sel");
  const NodeId dyn = nl.mark_precharged("dyn");
  nl.add_cap(dyn, 100 * fF);
  NodeId prev = dyn;
  for (int i = 0; i < 6; ++i) {
    const NodeId next = nl.add_node("n" + std::to_string(i));
    nl.add_cap(next, 10 * fF);
    nl.add_transistor(TransistorType::kNEnhancement, sel, prev, next, 8 * um,
                      4 * um);
    prev = next;
  }
  ChargeSharingOptions shallow;
  shallow.max_depth = 2;
  const auto r2 = analyze_charge_sharing(nl, nmos4(), dyn, shallow);
  const auto r_all = analyze_charge_sharing(nl, nmos4(), dyn);
  EXPECT_EQ(r2.sharing_nodes.size(), 2u);
  EXPECT_EQ(r_all.sharing_nodes.size(), 6u);
  EXPECT_LT(r2.shared_cap, r_all.shared_cap);
  EXPECT_GT(r2.v_after, r_all.v_after);
}

TEST(ChargeSharing, BusAnalysisCoversAllDrivers) {
  const GeneratedCircuit g = precharged_bus(Style::kNmos, 4);
  const auto all = analyze_all_charge_sharing(g.netlist, nmos4());
  ASSERT_EQ(all.size(), 1u);  // only the bus is precharged
  // Every driver's internal node is reachable through its (potentially
  // conducting) select transistor.
  EXPECT_EQ(all[0].sharing_nodes.size(), 4u);
  EXPECT_GT(all[0].v_after, 2.5) << "bus must not sag below threshold";
}

TEST(ChargeSharing, PredictionMatchesAnalogSimulator) {
  // The analysis assumes every select conducts; to compare against the
  // simulator, enable every select line so both see the same topology,
  // and keep all data pull-downs off.
  const Tech tech = nmos4();
  const GeneratedCircuit g = precharged_bus(Style::kNmos, 3);
  const NodeId bus = *g.netlist.find_node("bus");
  const auto pred = analyze_charge_sharing(g.netlist, tech, bus);

  std::vector<Stimulus> stimuli;
  for (NodeId n : g.netlist.node_ids()) {
    const Node& info = g.netlist.node(n);
    if (!info.is_input) continue;
    const bool is_select = info.name.view().starts_with("sel");
    stimuli.push_back({n, PwlSource::dc(is_select ? tech.vdd() : 0.0)});
  }
  const Elaboration e = elaborate(g.netlist, tech, stimuli);
  TransientOptions opt;
  opt.t_stop = 50e-9;
  e.apply_precharge(g.netlist, tech.vdd(), opt);
  const TransientResult r = simulate(e.circuit(), opt);
  const Volts v_settled = r.at(e.analog(bus)).value(
      r.at(e.analog(bus)).size() - 1);

  // The static prediction ignores the threshold drop across the pass
  // devices (charge stops flowing when the internal node reaches
  // Vg - Vt), so it is a *lower* bound on the settled level; with these
  // capacitance ratios they should still agree within a few hundred mV.
  EXPECT_LE(pred.v_after, v_settled + 0.05);
  EXPECT_NEAR(pred.v_after, v_settled, 0.5);
}

TEST(ChargeSharing, ReportFormatsFailures) {
  Netlist nl;
  nl.mark_power("vdd");
  nl.mark_ground("gnd");
  const NodeId sel = nl.mark_input("sel");
  const NodeId dyn = nl.mark_precharged("dyn");
  const NodeId big = nl.add_node("big");
  nl.add_cap(dyn, 10 * fF);
  nl.add_cap(big, 200 * fF);  // sharing dominates: dyn collapses
  nl.add_transistor(TransistorType::kNEnhancement, sel, dyn, big, 8 * um,
                    4 * um);
  const auto all = analyze_all_charge_sharing(nl, nmos4());
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].fails(2.5));
  const std::string report = format_charge_sharing(nl, all, 2.5);
  EXPECT_NE(report.find("FAILS"), std::string::npos);
  EXPECT_NE(report.find("dyn"), std::string::npos);
}

}  // namespace
}  // namespace sldm
