// Unit tests for src/util: contracts, interpolation, statistics,
// strings, table rendering, JSON writer helpers, and the thread pool's
// exception policy.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>

#include "util/contracts.h"
#include "util/error.h"
#include "util/interp.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/text_table.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace sldm {
namespace {

// --- contracts -----------------------------------------------------------

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(SLDM_EXPECTS(false), ContractViolation);
  EXPECT_NO_THROW(SLDM_EXPECTS(true));
}

TEST(Contracts, EnsuresThrowsOnViolation) {
  EXPECT_THROW(SLDM_ENSURES(1 == 2), ContractViolation);
}

TEST(Contracts, MessageNamesKindAndExpression) {
  try {
    SLDM_ASSERT(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant"), std::string::npos);
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
  }
}

// --- PiecewiseLinear -----------------------------------------------------

TEST(PiecewiseLinear, SinglePointIsConstant) {
  const PiecewiseLinear f({1.0}, {7.0});
  EXPECT_DOUBLE_EQ(f(0.0), 7.0);
  EXPECT_DOUBLE_EQ(f(1.0), 7.0);
  EXPECT_DOUBLE_EQ(f(100.0), 7.0);
}

TEST(PiecewiseLinear, InterpolatesLinearly) {
  const PiecewiseLinear f({0.0, 1.0, 3.0}, {0.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(f(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(2.0), 1.0);
}

TEST(PiecewiseLinear, ClampsOutsideDomain) {
  const PiecewiseLinear f({0.0, 1.0}, {3.0, 5.0});
  EXPECT_DOUBLE_EQ(f(-10.0), 3.0);
  EXPECT_DOUBLE_EQ(f(10.0), 5.0);
}

TEST(PiecewiseLinear, DerivativeOfSegments) {
  const PiecewiseLinear f({0.0, 1.0, 3.0}, {0.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(f.derivative(0.5), 2.0);
  EXPECT_DOUBLE_EQ(f.derivative(2.0), -1.0);
  EXPECT_DOUBLE_EQ(f.derivative(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.derivative(4.0), 0.0);
}

TEST(PiecewiseLinear, RejectsUnsortedOrMismatched) {
  EXPECT_THROW(PiecewiseLinear({1.0, 0.5}, {0.0, 0.0}), ContractViolation);
  EXPECT_THROW(PiecewiseLinear({0.0, 0.0}, {0.0, 1.0}), ContractViolation);
  EXPECT_THROW(PiecewiseLinear({0.0}, {0.0, 1.0}), ContractViolation);
  EXPECT_THROW(PiecewiseLinear({}, {}), ContractViolation);
}

TEST(PiecewiseLinear, MaxAbsDifference) {
  const PiecewiseLinear f({0.0, 1.0}, {0.0, 1.0});
  const PiecewiseLinear g({0.0, 1.0}, {0.5, 1.5});
  EXPECT_NEAR(f.max_abs_difference(g), 0.5, 1e-12);
  EXPECT_NEAR(f.max_abs_difference(f), 0.0, 1e-12);
}

TEST(Spacing, LogSpacedEndpointsAndMonotone) {
  const auto xs = log_spaced(0.01, 100.0, 9);
  ASSERT_EQ(xs.size(), 9u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.01);
  EXPECT_DOUBLE_EQ(xs.back(), 100.0);
  for (std::size_t i = 1; i < xs.size(); ++i) EXPECT_GT(xs[i], xs[i - 1]);
  // Log spacing: constant ratio.
  const double ratio = xs[1] / xs[0];
  for (std::size_t i = 2; i < xs.size(); ++i) {
    EXPECT_NEAR(xs[i] / xs[i - 1], ratio, 1e-9);
  }
}

TEST(Spacing, LinSpaced) {
  const auto xs = lin_spaced(-1.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs[0], -1.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.0);
  EXPECT_DOUBLE_EQ(xs[4], 1.0);
}

TEST(Spacing, RejectsBadArguments) {
  EXPECT_THROW(log_spaced(0.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(log_spaced(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(lin_spaced(0.0, 1.0, 1), ContractViolation);
}

// --- stats ---------------------------------------------------------------

TEST(Stats, SummaryOfKnownSample) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SingleElementSummary) {
  const Summary s = summarize({42.0});
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p90, 42.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 10.0);
}

TEST(Stats, EmptySummaryRejected) {
  EXPECT_THROW(summarize({}), ContractViolation);
}

TEST(Histogram, CountsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamped into bin 0
  h.add(42.0);  // clamped into bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  EXPECT_FALSE(h.to_ascii().empty());
}

// --- strings -------------------------------------------------------------

TEST(Strings, SplitWs) {
  const auto t = split_ws("  a\tbb   c ");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "c");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, SplitOnDelimiterKeepsEmptyFields) {
  const auto t = split("a::b:", ':');
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "");
  EXPECT_EQ(t[2], "b");
  EXPECT_EQ(t[3], "");
}

TEST(Strings, TrimAndLower) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_lower("VdD!"), "vdd!");
}

TEST(Strings, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5e-9"), 2.5e-9);
  EXPECT_FALSE(parse_double("2.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(Strings, ParseDoubleRejectsOverflowAndHexFloats) {
  // Pre-fix, "1e999" sailed through strtod as +inf with errno unset
  // by the caller, and "0x10" parsed as a C99 hex float.
  EXPECT_FALSE(parse_double("1e999").has_value());
  EXPECT_FALSE(parse_double("-1e999").has_value());
  EXPECT_FALSE(parse_double("0x10").has_value());
  EXPECT_FALSE(parse_double("-0X1p4").has_value());
  // Underflow and explicit non-finite spellings stay parseable...
  EXPECT_DOUBLE_EQ(*parse_double("1e-999"), 0.0);
  EXPECT_TRUE(std::isinf(*parse_double("inf")));
  EXPECT_TRUE(std::isnan(*parse_double("nan")));
  // ...but the finite variant refuses them.
  EXPECT_FALSE(parse_finite_double("inf").has_value());
  EXPECT_FALSE(parse_finite_double("-inf").has_value());
  EXPECT_FALSE(parse_finite_double("nan").has_value());
  EXPECT_DOUBLE_EQ(*parse_finite_double("2.5e-9"), 2.5e-9);
}

TEST(Strings, ParseLongStrict) {
  EXPECT_EQ(*parse_long("-17"), -17);
  EXPECT_FALSE(parse_long("17.0").has_value());
  EXPECT_FALSE(parse_long("99999999999999999999").has_value());
  EXPECT_FALSE(parse_long("-99999999999999999999").has_value());
}

TEST(Strings, ParseHexU64) {
  EXPECT_EQ(*parse_hex_u64("00af"), 0xafu);
  EXPECT_EQ(*parse_hex_u64("FFFFFFFFFFFFFFFF"), ~std::uint64_t{0});
  EXPECT_EQ(*parse_hex_u64("0000000000000000"), 0u);
  EXPECT_FALSE(parse_hex_u64("").has_value());
  EXPECT_FALSE(parse_hex_u64("0x10").has_value());
  EXPECT_FALSE(parse_hex_u64("-1").has_value());
  EXPECT_FALSE(parse_hex_u64("xyzw").has_value());
  EXPECT_FALSE(parse_hex_u64("00000000deadbeef0").has_value());  // 17 digits
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(format("%.2f", 1.239), "1.24");
}

// --- text table ----------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RowArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, NumericRow) {
  TextTable t({"label", "x", "y"});
  t.add_row_numeric("row", {1.23456, 2.0}, 2);
  EXPECT_NE(t.to_string().find("1.23"), std::string::npos);
}

// --- units ---------------------------------------------------------------

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_ns(3e-9), 3.0);
  EXPECT_DOUBLE_EQ(to_fF(2e-15), 2.0);
  EXPECT_DOUBLE_EQ(to_kohm(5e3), 5.0);
  EXPECT_DOUBLE_EQ(4.0 * units::um, 4e-6);
}

// --- JSON writer helpers -------------------------------------------------

TEST(Json, EscapeCoversControlCharactersAndRoundTrips) {
  // Every byte below 0x20 plus quote and backslash must escape into a
  // document the project's own parser accepts back verbatim.
  std::string nasty = "plain \"quoted\" back\\slash";
  for (int c = 1; c < 0x20; ++c) nasty.push_back(static_cast<char>(c));
  const std::string doc = "\"" + json_escape(nasty) + "\"";
  // Named escapes for the common control characters, \u00XX for the rest.
  EXPECT_NE(doc.find("\\n"), std::string::npos);
  EXPECT_NE(doc.find("\\t"), std::string::npos);
  EXPECT_NE(doc.find("\\u0001"), std::string::npos);
  const JsonValue v = parse_json(doc);
  EXPECT_EQ(v.as_string(), nasty);
}

TEST(Json, NumberEmitsNullForNonFinite) {
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(INFINITY), "null");
  EXPECT_EQ(json_number(-INFINITY), "null");
  // Finite values round-trip through the parser at full precision.
  for (double x : {0.0, -1.5, 3.0e-15, 1.2345678901234567e9}) {
    const JsonValue v = parse_json(json_number(x));
    EXPECT_DOUBLE_EQ(v.as_number(), x);
  }
}

// --- ThreadPool exception policy -----------------------------------------

TEST(ThreadPool, FirstErrorWinsAndExtrasAreCounted) {
  const std::uint64_t before =
      snapshot_process_metrics()
          .counter("thread_pool.suppressed_exceptions")
          .value();
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 6; ++i) {
    pool.submit([&ran] {
      ++ran;
      throw Error("task failed");
    });
  }
  try {
    pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("task failed"), std::string::npos) << what;
    // 6 tasks failed: the first is rethrown, the other 5 are noted.
    EXPECT_NE(what.find("and 5 more task failures suppressed"),
              std::string::npos)
        << what;
  }
  EXPECT_EQ(ran.load(), 6);
  const std::uint64_t after =
      snapshot_process_metrics()
          .counter("thread_pool.suppressed_exceptions")
          .value();
  EXPECT_EQ(after - before, 5u);
}

TEST(ThreadPool, SingleFailureHasNoSuppressionNote) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("only failure"); });
  pool.submit([] {});
  try {
    pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("only failure"), std::string::npos);
    EXPECT_EQ(what.find("suppressed"), std::string::npos) << what;
  }
}

TEST(ThreadPool, ReusableAfterFailedBatch) {
  ThreadPool pool(3);
  pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(pool.wait(), Error);
  // The error and suppression state reset: a clean batch passes.
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) pool.submit([&ran] { ++ran; });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, NonSldmErrorRethrownUnwrapped) {
  // The "and N more" note only decorates sldm::Error; foreign exception
  // types pass through untouched (their count still lands in metrics).
  ThreadPool pool(4);
  for (int i = 0; i < 3; ++i) {
    pool.submit([] { throw std::runtime_error("foreign"); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

}  // namespace
}  // namespace sldm
