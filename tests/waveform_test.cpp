// Tests for waveform storage and the delay/slope measurements.
#include <gtest/gtest.h>

#include "analog/waveform.h"
#include "util/contracts.h"

namespace sldm {
namespace {

Waveform ramp01(Seconds t0, Seconds t1) {
  // 0 V before t0, linear to 1 V at t1, flat after.
  Waveform w;
  w.append(0.0, 0.0);
  w.append(t0, 0.0);
  w.append(t1, 1.0);
  w.append(t1 + 1e-9, 1.0);
  return w;
}

TEST(Waveform, AppendRequiresIncreasingTime) {
  Waveform w;
  w.append(0.0, 1.0);
  w.append(1.0, 2.0);
  EXPECT_THROW(w.append(1.0, 3.0), ContractViolation);
  EXPECT_THROW(w.append(0.5, 3.0), ContractViolation);
}

TEST(Waveform, AtInterpolatesAndClamps) {
  const Waveform w = ramp01(1e-9, 3e-9);
  EXPECT_DOUBLE_EQ(w.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(0.5e-9), 0.0);
  EXPECT_NEAR(w.at(2e-9), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(w.at(10e-9), 1.0);
}

TEST(Waveform, MinMax) {
  const Waveform w = ramp01(1e-9, 3e-9);
  EXPECT_DOUBLE_EQ(w.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(w.max_value(), 1.0);
}

TEST(Waveform, RisingCrossInterpolated) {
  const Waveform w = ramp01(1e-9, 3e-9);
  const auto t = w.cross(0.5, Transition::kRise);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 2e-9, 1e-15);
}

TEST(Waveform, FallingCross) {
  Waveform w;
  w.append(0.0, 5.0);
  w.append(1e-9, 5.0);
  w.append(2e-9, 0.0);
  const auto t = w.cross(2.5, Transition::kFall);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 1.5e-9, 1e-15);
  EXPECT_FALSE(w.cross(2.5, Transition::kRise).has_value());
}

TEST(Waveform, CrossRespectsAfter) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1e-9, 1.0);  // first rise
  w.append(2e-9, 0.0);
  w.append(3e-9, 1.0);  // second rise
  const auto t = w.cross(0.5, Transition::kRise, 1.5e-9);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 2.5e-9, 1e-15);
}

TEST(Waveform, NoCrossReturnsNullopt) {
  const Waveform w = ramp01(1e-9, 3e-9);
  EXPECT_FALSE(w.cross(1.5, Transition::kRise).has_value());
  EXPECT_FALSE(w.cross(0.5, Transition::kFall).has_value());
}

TEST(Waveform, TransitionTimeOfLinearRampEqualsRampTime) {
  // For an exact linear ramp of duration T over the full swing, the
  // 10-90 measure scaled by 1/0.8 recovers T.
  const Seconds T = 4e-9;
  const Waveform w = ramp01(1e-9, 1e-9 + T);
  const auto s = w.transition_time(0.0, 1.0, Transition::kRise);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, T, 1e-14);
}

TEST(Waveform, TransitionTimeFalling) {
  Waveform w;
  w.append(0.0, 1.0);
  w.append(1e-9, 1.0);
  w.append(5e-9, 0.0);
  w.append(6e-9, 0.0);
  const auto s = w.transition_time(0.0, 1.0, Transition::kFall);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 4e-9, 1e-14);
}

TEST(Waveform, TransitionTimeRequiresFullTraversal) {
  // Rises only to 0.5: no 90% crossing.
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1e-9, 0.5);
  EXPECT_FALSE(
      w.transition_time(0.0, 1.0, Transition::kRise).has_value());
}

TEST(MeasureDelay, BetweenTwoRamps) {
  const Waveform in = ramp01(1e-9, 2e-9);    // 50% at 1.5 ns
  const Waveform out = ramp01(3e-9, 5e-9);   // 50% at 4 ns
  const auto d = measure_delay(in, Transition::kRise, out, Transition::kRise,
                               0.5);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 2.5e-9, 1e-14);
}

TEST(MeasureDelay, OutputCrossingMustFollowInput) {
  // The output crossing search starts at the input crossing.
  Waveform in = ramp01(5e-9, 6e-9);  // input crosses at 5.5 ns
  Waveform out = ramp01(1e-9, 2e-9);  // output crossed earlier: not found
  EXPECT_FALSE(measure_delay(in, Transition::kRise, out, Transition::kRise,
                             0.5)
                   .has_value());
}

TEST(MeasureDelay, MissingInputCrossing) {
  Waveform flat;
  flat.append(0.0, 0.0);
  flat.append(1e-9, 0.0);
  const Waveform out = ramp01(1e-9, 2e-9);
  EXPECT_FALSE(measure_delay(flat, Transition::kRise, out, Transition::kRise,
                             0.5)
                   .has_value());
}

}  // namespace
}  // namespace sldm
