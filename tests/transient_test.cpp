// Validation of the transient simulator against closed-form circuit
// theory: RC step responses, dividers, DC operating points, source
// breakpoints, and initial conditions.
#include <gtest/gtest.h>

#include <cmath>

#include "analog/elaborate.h"
#include "analog/transient.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/units.h"

namespace sldm {
namespace {

using namespace units;

TEST(Dc, ResistiveDivider) {
  Circuit c;
  const AnalogNode top = c.add_node("top");
  const AnalogNode mid = c.add_node("mid");
  c.add_vsource(top, kGround, PwlSource::dc(6.0));
  c.add_resistor(top, mid, 1e3);
  c.add_resistor(mid, kGround, 2e3);
  const auto v = dc_operating_point(c);
  // The solver's Gmin leak (1e-12 S per node) shifts levels by a few nV.
  EXPECT_NEAR(v[top], 6.0, 1e-6);
  EXPECT_NEAR(v[mid], 4.0, 1e-6);
}

TEST(Dc, NmosInverterLevels) {
  // DC transfer points of the ratioed inverter: input high -> output
  // low (but above 0); input low -> output at Vdd (depletion load).
  const Tech tech = nmos4();
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);

  {
    const Elaboration e =
        elaborate(g.netlist, tech, {{g.input, PwlSource::dc(5.0)}});
    const auto v = dc_operating_point(e.circuit());
    const Volts out = v[e.analog(g.output)];
    EXPECT_GT(out, 0.0);
    EXPECT_LT(out, 1.5) << "V_OL should be well below the threshold";
  }
  {
    const Elaboration e =
        elaborate(g.netlist, tech, {{g.input, PwlSource::dc(0.0)}});
    const auto v = dc_operating_point(e.circuit());
    EXPECT_NEAR(v[e.analog(g.output)], 5.0, 0.05)
        << "depletion load should restore a full high";
  }
}

TEST(Transient, RcChargeMatchesAnalytic) {
  // 1 kOhm / 1 pF driven by a 1 V step: v(t) = 1 - exp(-t/RC).
  Circuit c;
  const AnalogNode in = c.add_node("in");
  const AnalogNode out = c.add_node("out");
  c.add_vsource(in, kGround, PwlSource::edge(0.0, 1.0, 1e-9, 1e-12));
  c.add_resistor(in, out, 1e3);
  c.add_capacitor(out, kGround, 1e-12);

  TransientOptions opt;
  opt.t_stop = 10e-9;
  opt.dv_max = 0.02;  // fine steps for an accuracy check
  const TransientResult r = simulate(c, opt);
  const Waveform& w = r.at(out);

  const double rc = 1e3 * 1e-12;
  for (double t_ns : {1.5, 2.0, 3.0, 5.0, 8.0}) {
    const double t = t_ns * 1e-9;
    const double expected = 1.0 - std::exp(-(t - 1e-9 - 0.5e-12) / rc);
    EXPECT_NEAR(w.at(t), expected, 0.01) << "at t = " << t_ns << " ns";
  }
  EXPECT_GT(r.accepted_steps, 20u);
}

TEST(Transient, Rc50PercentDelayIsLn2Tau) {
  Circuit c;
  const AnalogNode in = c.add_node("in");
  const AnalogNode out = c.add_node("out");
  c.add_vsource(in, kGround, PwlSource::edge(0.0, 1.0, 1e-9, 1e-12));
  c.add_resistor(in, out, 10e3);
  c.add_capacitor(out, kGround, 100e-15);
  TransientOptions opt;
  opt.t_stop = 10e-9;
  opt.dv_max = 0.02;
  const TransientResult r = simulate(c, opt);
  const auto t50 = r.at(out).cross(0.5, Transition::kRise);
  ASSERT_TRUE(t50.has_value());
  const double rc = 10e3 * 100e-15;
  EXPECT_NEAR(*t50 - 1e-9, std::log(2.0) * rc, 0.03 * rc);
}

TEST(Transient, DischargeFromInitialCondition) {
  // A capacitor charged to 2 V decaying through a resistor.
  Circuit c;
  const AnalogNode n = c.add_node("n");
  c.add_resistor(n, kGround, 1e3);
  c.add_capacitor(n, kGround, 1e-12);
  TransientOptions opt;
  opt.t_stop = 5e-9;
  opt.dv_max = 0.05;
  opt.start_from_dc = false;
  opt.initial_conditions[n] = 2.0;
  const TransientResult r = simulate(c, opt);
  const double rc = 1e-9;
  EXPECT_NEAR(r.at(n).at(0.0), 2.0, 1e-6);
  EXPECT_NEAR(r.at(n).at(1e-9), 2.0 * std::exp(-1.0), 0.04);
  EXPECT_NEAR(r.at(n).at(3e-9), 2.0 * std::exp(-3.0), 0.04);
  (void)rc;
}

TEST(Transient, SourceBreakpointsAreHit) {
  // The integrator must land exactly on PWL corners; the input waveform
  // then reproduces the source exactly at those instants.
  Circuit c;
  const AnalogNode in = c.add_node("in");
  const AnalogNode out = c.add_node("out");
  const PwlSource src =
      PwlSource::points({{1e-9, 0.0}, {2e-9, 3.0}, {4e-9, 1.0}});
  c.add_vsource(in, kGround, src);
  c.add_resistor(in, out, 1e3);
  c.add_capacitor(out, kGround, 10e-15);
  TransientOptions opt;
  opt.t_stop = 6e-9;
  const TransientResult r = simulate(c, opt);
  const Waveform& w = r.at(in);
  EXPECT_NEAR(w.at(2e-9), 3.0, 1e-6);
  EXPECT_NEAR(w.at(4e-9), 1.0, 1e-6);
}

TEST(Transient, CouplingCapacitorDividesAStep) {
  // Two series caps from a stepped source: the floating middle node
  // follows with the capacitive divider ratio immediately after the
  // step (C1/(C1+C2) of the step).
  Circuit c;
  const AnalogNode in = c.add_node("in");
  const AnalogNode mid = c.add_node("mid");
  c.add_vsource(in, kGround, PwlSource::edge(0.0, 2.0, 1e-9, 10e-12));
  c.add_capacitor(in, mid, 3e-15);
  c.add_capacitor(mid, kGround, 1e-15);
  TransientOptions opt;
  opt.t_stop = 2e-9;
  const TransientResult r = simulate(c, opt);
  // Divider: 3/(3+1) * 2 V = 1.5 V (gmin leak is negligible at 1 ns).
  EXPECT_NEAR(r.at(mid).at(1.2e-9), 1.5, 0.02);
}

TEST(Transient, NmosInverterSwitches) {
  const Tech tech = nmos4();
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  const Elaboration e = elaborate(
      g.netlist, tech, {{g.input, PwlSource::edge(0.0, 5.0, 2e-9, 1e-9)}});
  TransientOptions opt;
  opt.t_stop = 30e-9;
  const TransientResult r = simulate(e.circuit(), opt);
  const Waveform& out = r.at(e.analog(g.output));
  EXPECT_GT(out.at(1e-9), 4.0) << "output initially high";
  const auto fall = out.cross(2.5, Transition::kFall, 2e-9);
  ASSERT_TRUE(fall.has_value()) << "output must fall after the input edge";
  EXPECT_LT(out.value(out.size() - 1), 1.0);
}

TEST(Transient, CmosInverterSwitchesRailToRail) {
  const Tech tech = cmos3();
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 1, 1);
  const Elaboration e = elaborate(
      g.netlist, tech, {{g.input, PwlSource::edge(0.0, 5.0, 2e-9, 1e-9)}});
  TransientOptions opt;
  opt.t_stop = 30e-9;
  const TransientResult r = simulate(e.circuit(), opt);
  const Waveform& out = r.at(e.analog(g.output));
  EXPECT_GT(out.at(1.5e-9), 4.9) << "CMOS high is a full rail";
  const auto fall = out.cross(2.5, Transition::kFall, 2e-9);
  ASSERT_TRUE(fall.has_value());
  EXPECT_LT(out.value(out.size() - 1), 0.05) << "CMOS low is a full rail";
}

TEST(Transient, PrechargedNodeHoldsThenDischarges) {
  const Tech tech = nmos4();
  const GeneratedCircuit g = precharged_bus(Style::kNmos, 2);
  std::vector<Stimulus> stimuli;
  stimuli.push_back({g.input, PwlSource::edge(0.0, 5.0, 5e-9, 1e-9)});
  for (NodeId n : g.high_inputs) stimuli.push_back({n, PwlSource::dc(5.0)});
  for (NodeId n : g.low_inputs) stimuli.push_back({n, PwlSource::dc(0.0)});
  const Elaboration e = elaborate(g.netlist, tech, stimuli);
  TransientOptions opt;
  opt.t_stop = 40e-9;
  e.apply_precharge(g.netlist, tech.vdd(), opt);
  const TransientResult r = simulate(e.circuit(), opt);
  const NodeId bus = *g.netlist.find_node("bus");
  const Waveform& w = r.at(e.analog(bus));
  // Charge sharing with the selected driver's (initially low) internal
  // node sags the precharged level a little -- classic dynamic-logic
  // behavior -- but the bus must stay solidly high before the edge.
  EXPECT_GT(w.at(4e-9), 4.0) << "bus holds its precharge";
  const auto fall = w.cross(2.5, Transition::kFall, 5e-9);
  ASSERT_TRUE(fall.has_value()) << "bus discharges after data rises";
}

TEST(Transient, OptionsValidated) {
  Circuit c;
  c.add_node("x");
  TransientOptions opt;  // t_stop = 0
  EXPECT_THROW(simulate(c, opt), ContractViolation);
}

TEST(Transient, WorkCountersPopulated) {
  Circuit c;
  const AnalogNode in = c.add_node("in");
  const AnalogNode out = c.add_node("out");
  c.add_vsource(in, kGround, PwlSource::edge(0.0, 1.0, 1e-10, 1e-12));
  c.add_resistor(in, out, 1e3);
  c.add_capacitor(out, kGround, 1e-12);
  TransientOptions opt;
  opt.t_stop = 5e-9;
  const TransientResult r = simulate(c, opt);
  EXPECT_GT(r.accepted_steps, 0u);
  EXPECT_GT(r.newton_iterations, r.accepted_steps);
  EXPECT_EQ(r.waveforms.size(), c.node_count());
}

}  // namespace
}  // namespace sldm
