// Tests for the .sim reader/writer, including a round-trip property over
// every generated benchmark circuit.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/generators.h"
#include "netlist/sim_io.h"
#include "util/error.h"
#include "util/units.h"

namespace sldm {
namespace {

Netlist parse(const std::string& text) {
  std::istringstream in(text);
  return read_sim(in, "<test>");
}

TEST(SimIo, ParsesTransistorRecords) {
  const Netlist nl = parse(
      "| units: 100\n"
      "e in gnd out 4 8\n"
      "d out out vdd 8 4\n");
  EXPECT_EQ(nl.device_count(), 2u);
  EXPECT_EQ(nl.node_count(), 4u);
  const Transistor& t = nl.device(DeviceId(0));
  EXPECT_EQ(t.type, TransistorType::kNEnhancement);
  EXPECT_DOUBLE_EQ(t.length, 4e-6);
  EXPECT_DOUBLE_EQ(t.width, 8e-6);
}

TEST(SimIo, RecognizesRailNamesAutomatically) {
  const Netlist nl = parse("e in GND out 4 8\ne in2 Vdd out 4 8\n");
  EXPECT_TRUE(nl.node(*nl.find_node("GND")).is_ground);
  EXPECT_TRUE(nl.node(*nl.find_node("Vdd")).is_power);
}

TEST(SimIo, NSynonymForE) {
  const Netlist nl = parse("n in gnd out 4 8\n");
  EXPECT_EQ(nl.device(DeviceId(0)).type, TransistorType::kNEnhancement);
}

TEST(SimIo, ParsesPType) {
  const Netlist nl = parse("p in vdd out 3 6\n");
  EXPECT_EQ(nl.device(DeviceId(0)).type, TransistorType::kPEnhancement);
}

TEST(SimIo, UnitsHeaderScalesDimensions) {
  // units: 50 means one file unit = 0.5 micron.
  const Netlist nl = parse("| units: 50\ne a gnd b 4 8\n");
  EXPECT_DOUBLE_EQ(nl.device(DeviceId(0)).length, 2e-6);
  EXPECT_DOUBLE_EQ(nl.device(DeviceId(0)).width, 4e-6);
}

TEST(SimIo, GroundedCapRecord) {
  const Netlist nl = parse("c busnode 12.5\n");
  const NodeId n = *nl.find_node("busnode");
  EXPECT_DOUBLE_EQ(nl.node(n).cap, 12.5 * units::fF);
}

TEST(SimIo, InternodalCapLumpedToBothEnds) {
  const Netlist nl = parse("C a b 4\n");
  EXPECT_DOUBLE_EQ(nl.node(*nl.find_node("a")).cap, 4 * units::fF);
  EXPECT_DOUBLE_EQ(nl.node(*nl.find_node("b")).cap, 4 * units::fF);
}

TEST(SimIo, RoleRecords) {
  const Netlist nl = parse(
      "@vdd vcc\n@gnd vee\n@in a b\n@out y\n@precharged bus\n");
  EXPECT_TRUE(nl.node(*nl.find_node("vcc")).is_power);
  EXPECT_TRUE(nl.node(*nl.find_node("vee")).is_ground);
  EXPECT_TRUE(nl.node(*nl.find_node("a")).is_input);
  EXPECT_TRUE(nl.node(*nl.find_node("b")).is_input);
  EXPECT_TRUE(nl.node(*nl.find_node("y")).is_output);
  EXPECT_TRUE(nl.node(*nl.find_node("bus")).is_precharged);
}

TEST(SimIo, CommentsAndBlankLinesIgnored) {
  const Netlist nl = parse("\n| a comment\n\ne in gnd out 4 8\n");
  EXPECT_EQ(nl.device_count(), 1u);
}

TEST(SimIo, ErrorsCarryLineNumbers) {
  try {
    parse("e in gnd out 4 8\nbogus record\n");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.file(), "<test>");
  }
}

TEST(SimIo, RejectsMalformedRecords) {
  EXPECT_THROW(parse("e in gnd out\n"), ParseError);           // missing dims
  EXPECT_THROW(parse("e in gnd out 0 8\n"), ParseError);       // zero length
  EXPECT_THROW(parse("e in gnd gnd 4 8\n"), ParseError);       // s == d
  EXPECT_THROW(parse("c node\n"), ParseError);                 // missing cap
  EXPECT_THROW(parse("c node -3\n"), ParseError);              // negative cap
  EXPECT_THROW(parse("C a b\n"), ParseError);                  // missing cap
  EXPECT_THROW(parse("@bogus x\n"), ParseError);               // unknown role
  EXPECT_THROW(parse("@in\n"), ParseError);                    // empty role
  EXPECT_THROW(parse("| units: abc\ne a gnd b 4 8\n"), ParseError);
}

TEST(SimIo, RejectsBadUnitsAndUnknownRecord) {
  EXPECT_THROW(parse("| units: -5\n"), ParseError);
  EXPECT_THROW(parse("zzz 1 2 3\n"), ParseError);
}

TEST(SimIo, MissingFileThrows) {
  EXPECT_THROW(read_sim_file("/nonexistent/file.sim"), Error);
}

TEST(SimIo, SetRecordParsesFixedValues) {
  const Netlist nl = parse(
      "e sel a b 4 8\n"
      "@set sel=1 a=0\n");
  EXPECT_EQ(nl.node(*nl.find_node("sel")).fixed_value(),
            std::optional<bool>(true));
  EXPECT_EQ(nl.node(*nl.find_node("a")).fixed_value(),
            std::optional<bool>(false));
  EXPECT_EQ(nl.node(*nl.find_node("b")).fixed_value(), std::nullopt);
}

TEST(SimIo, SetRecordRejectsMalformed) {
  EXPECT_THROW(parse("@set\n"), ParseError);            // no entries
  EXPECT_THROW(parse("@set a\n"), ParseError);          // missing value
  EXPECT_THROW(parse("@set a=2\n"), ParseError);        // not 0/1
  EXPECT_THROW(parse("@set a=\n"), ParseError);         // empty value
}

TEST(SimIo, FixedValuesSurviveRoundTrip) {
  Netlist nl;
  nl.mark_power("vdd");
  nl.mark_ground("gnd");
  const NodeId sel = nl.mark_input("sel");
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  nl.add_transistor(TransistorType::kNEnhancement, sel, a, b, 8e-6, 4e-6,
                    Flow::kSourceToDrain);
  nl.set_fixed(sel, true);
  nl.set_fixed(a, false);
  const Netlist rt = reparse(nl);
  EXPECT_EQ(rt.node(*rt.find_node("sel")).fixed_value(),
            std::optional<bool>(true));
  EXPECT_EQ(rt.node(*rt.find_node("a")).fixed_value(),
            std::optional<bool>(false));
  EXPECT_EQ(rt.node(*rt.find_node("b")).fixed_value(), std::nullopt);
  EXPECT_EQ(rt.device(DeviceId(0)).flow, Flow::kSourceToDrain);
  // Unpinning drops the node from the @set record entirely.
  Netlist freed = reparse(nl);
  freed.set_fixed(*freed.find_node("a"), std::nullopt);
  const Netlist rt2 = reparse(freed);
  EXPECT_EQ(rt2.node(*rt2.find_node("a")).fixed_value(), std::nullopt);
  EXPECT_EQ(rt2.node(*rt2.find_node("sel")).fixed_value(),
            std::optional<bool>(true));
}

TEST(SimIo, MutatedNetlistSurvivesRoundTrip) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 3, 1);
  Netlist nl = g.netlist;
  nl.set_width(DeviceId(0), 16e-6);
  nl.set_length(DeviceId(1), 6e-6);
  nl.set_capacitance(*nl.find_node("s1"), 55e-15);
  nl.set_flow(DeviceId(2), Flow::kDrainToSource);
  const Netlist rt = reparse(nl);
  EXPECT_NEAR(rt.device(DeviceId(0)).width, 16e-6, 1e-12);
  EXPECT_NEAR(rt.device(DeviceId(1)).length, 6e-6, 1e-12);
  EXPECT_NEAR(rt.node(*rt.find_node("s1")).cap, 55e-15, 1e-21);
  EXPECT_EQ(rt.device(DeviceId(2)).flow, Flow::kDrainToSource);
}

// Round-trip property: write + reparse preserves the circuit.
class SimIoRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SimIoRoundTrip, GeneratedCircuitSurvivesRoundTrip) {
  const auto suite = accuracy_suite(Style::kNmos);
  const auto& g = suite[static_cast<std::size_t>(GetParam())];
  const Netlist& a = g.netlist;
  const Netlist b = reparse(a);

  ASSERT_EQ(b.node_count(), a.node_count());
  ASSERT_EQ(b.device_count(), a.device_count());
  for (NodeId n : a.node_ids()) {
    const Node& na = a.node(n);
    const auto found = b.find_node(na.name);
    ASSERT_TRUE(found.has_value()) << na.name;
    const Node& nb = b.node(*found);
    EXPECT_EQ(nb.is_power, na.is_power) << na.name;
    EXPECT_EQ(nb.is_ground, na.is_ground) << na.name;
    EXPECT_EQ(nb.is_input, na.is_input) << na.name;
    EXPECT_EQ(nb.is_output, na.is_output) << na.name;
    EXPECT_EQ(nb.is_precharged, na.is_precharged) << na.name;
    EXPECT_NEAR(nb.cap, na.cap, 1e-21) << na.name;
  }
  for (DeviceId d : a.device_ids()) {
    const Transistor& ta = a.device(d);
    const Transistor& tb = b.device(d);
    EXPECT_EQ(tb.type, ta.type);
    EXPECT_EQ(b.node(tb.gate).name, a.node(ta.gate).name);
    EXPECT_EQ(b.node(tb.source).name, a.node(ta.source).name);
    EXPECT_EQ(b.node(tb.drain).name, a.node(ta.drain).name);
    EXPECT_NEAR(tb.width, ta.width, 1e-12);
    EXPECT_NEAR(tb.length, ta.length, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSuiteCircuits, SimIoRoundTrip,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace sldm
