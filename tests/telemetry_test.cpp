// Tests for the service-grade telemetry layer: MetricsRegistry::merge
// semantics, the Prometheus text-exposition renderer, the TelemetryHub
// (replace-vs-aggregate, thread safety, zero perturbation of results),
// the run ledger, and the `sldm stats` / `ledger summarize` /
// `bench diff` CLI surfaces.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cli/cli.h"
#include "delay/lumped.h"
#include "design/compiled_design.h"
#include "netlist/sim_io.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "util/error.h"
#include "util/json.h"
#include "util/ledger.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/telemetry.h"
#include "util/version.h"

namespace sldm {
namespace {

const std::string kSampleSim =
    std::string(SLDM_SOURCE_DIR) + "/testdata/sample_datapath.sim";

/// Leaves the process-wide hub exactly as a fresh process would have
/// it, so tests cannot leak snapshots (or the enabled flag) into each
/// other.
class HubGuard {
 public:
  HubGuard() { reset(); }
  ~HubGuard() { reset(); }

 private:
  static void reset() {
    TelemetryHub::instance().disable();
    TelemetryHub::instance().clear();
  }
};

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "sldm_telemetry_" + name;
  std::remove(path.c_str());
  return path;
}

int run(const std::vector<std::string>& args, std::string* out_text,
        std::string* err_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int rc = run_cli(args, out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

// --- Histogram / MetricsRegistry merge -----------------------------------

TEST(HistogramMerge, AddsBucketsTotalAndSum) {
  Histogram a(0.0, 4.0, 2);
  a.add(1.0);
  a.add(3.0);
  Histogram b(0.0, 4.0, 2);
  b.add(1.0);
  b.add(9.0);  // clamped into the top bucket
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 14.0);
}

TEST(HistogramMerge, LayoutMismatchThrows) {
  Histogram a(0.0, 4.0, 2);
  EXPECT_THROW(a.merge(Histogram(0.0, 4.0, 4)), Error);
  EXPECT_THROW(a.merge(Histogram(0.0, 8.0, 2)), Error);
  EXPECT_THROW(a.merge(Histogram(1.0, 4.0, 2)), Error);
  EXPECT_NO_THROW(a.merge(Histogram(0.0, 4.0, 2)));
}

TEST(RegistryMerge, EmptyOntoEmptyIsEmpty) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.merge(b);
  EXPECT_TRUE(a.empty());
}

TEST(RegistryMerge, EmptyIsIdentityOnBothSides) {
  MetricsRegistry x;
  x.counter("c").add(3);
  x.gauge("g").set(1.5);
  x.histogram("h", 0.0, 2.0, 2).add(1.0);

  MetricsRegistry empty_lhs;
  empty_lhs.merge(x);
  EXPECT_EQ(empty_lhs.find_counter("c")->value(), 3u);
  EXPECT_DOUBLE_EQ(empty_lhs.find_gauge("g")->value(), 1.5);
  EXPECT_EQ(empty_lhs.find_histogram("h")->total(), 1u);

  MetricsRegistry empty_rhs;
  x.merge(empty_rhs);
  EXPECT_EQ(x.find_counter("c")->value(), 3u);
}

TEST(RegistryMerge, PerTypeSemantics) {
  MetricsRegistry a;
  a.counter("c").add(2);
  a.gauge("g").set(1.0);
  a.histogram("h", 0.0, 4.0, 2).add(1.0);
  MetricsRegistry b;
  b.counter("c").add(5);
  b.counter("only_b").add(7);
  b.gauge("g").set(9.0);
  b.histogram("h", 0.0, 4.0, 2).add(3.0);

  a.merge(b);
  EXPECT_EQ(a.find_counter("c")->value(), 7u);        // counters sum
  EXPECT_EQ(a.find_counter("only_b")->value(), 7u);   // absent copied in
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->value(), 9.0);  // last write wins
  EXPECT_EQ(a.find_histogram("h")->count(0), 1u);     // buckets sum
  EXPECT_EQ(a.find_histogram("h")->count(1), 1u);
  EXPECT_EQ(a.find_histogram("h")->total(), 2u);
}

TEST(RegistryMerge, HistogramLayoutMismatchNamesTheMetric) {
  MetricsRegistry a;
  a.histogram("propagate.batch_size", 0.0, 4.0, 2);
  MetricsRegistry b;
  b.histogram("propagate.batch_size", 0.0, 8.0, 2);
  try {
    a.merge(b);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("propagate.batch_size"),
              std::string::npos);
  }
}

TEST(Registry, HistogramReRegistrationMismatchThrows) {
  MetricsRegistry reg;
  reg.histogram("h", 0.0, 4.0, 2).add(1.0);
  // Same layout: same histogram, samples kept.
  EXPECT_EQ(reg.histogram("h", 0.0, 4.0, 2).total(), 1u);
  // Any layout change is an error, not a silent re-interpretation.
  EXPECT_THROW(reg.histogram("h", 0.0, 4.0, 4), Error);
  EXPECT_THROW(reg.histogram("h", 0.0, 8.0, 2), Error);
  try {
    reg.histogram("h", 1.0, 4.0, 2);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'h'"), std::string::npos);
  }
}

// --- Process metrics snapshot --------------------------------------------

TEST(ProcessMetrics, SnapshotRacesConcurrentBumpsSafely) {
  const std::uint64_t before = snapshot_process_metrics()
                                   .counter("telemetry_test.bumps")
                                   .value();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        bump_process_counter("telemetry_test.bumps");
      }
    });
  }
  // Reads racing the bumps above: must be tear-free (tsan-checked in
  // scripts/check.sh) and monotone.
  std::uint64_t last = before;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t now = snapshot_process_metrics()
                                  .counter("telemetry_test.bumps")
                                  .value();
    EXPECT_GE(now, last);
    last = now;
  }
  for (std::thread& w : workers) w.join();
  const std::uint64_t after = snapshot_process_metrics()
                                  .counter("telemetry_test.bumps")
                                  .value();
  EXPECT_EQ(after - before, 4000u);
}

// --- Prometheus exposition -----------------------------------------------

TEST(Prometheus, EmptyRegistryRendersNothing) {
  EXPECT_EQ(to_prometheus(MetricsRegistry()), "");
}

TEST(Prometheus, SanitizesNames) {
  EXPECT_EQ(prometheus_name("propagate.batch_size"),
            "sldm_propagate_batch_size");
  EXPECT_EQ(prometheus_name("eco.updates"), "sldm_eco_updates");
  EXPECT_EQ(prometheus_name("a-b c/d"), "sldm_a_b_c_d");
  EXPECT_EQ(prometheus_name("keep:colons_and_09"),
            "sldm_keep:colons_and_09");
}

TEST(Prometheus, RendersAllThreeFamilies) {
  MetricsRegistry reg;
  reg.counter("propagate.stage_evaluations").add(7);
  reg.gauge("propagate.seconds").set(0.5);
  Histogram& h = reg.histogram("batch", 0.0, 4.0, 2);
  h.add(1.0);
  h.add(3.0);
  h.add(9.0);  // clamps into the top bucket
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE sldm_propagate_stage_evaluations_total "
                      "counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("sldm_propagate_stage_evaluations_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sldm_propagate_seconds gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("sldm_propagate_seconds 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sldm_batch histogram\n"), std::string::npos);
  // Buckets are cumulative; +Inf equals _count.
  EXPECT_NE(text.find("sldm_batch_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sldm_batch_bucket{le=\"4\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sldm_batch_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sldm_batch_sum 13\n"), std::string::npos);
  EXPECT_NE(text.find("sldm_batch_count 3\n"), std::string::npos);
}

TEST(Prometheus, LabelsComposeWithBucketLabels) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  reg.histogram("h", 0.0, 2.0, 1).add(1.0);
  const std::string text = to_prometheus(reg, "session=\"s1\"");
  EXPECT_NE(text.find("sldm_c_total{session=\"s1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sldm_h_bucket{session=\"s1\",le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sldm_h_sum{session=\"s1\"} 1\n"),
            std::string::npos);
}

TEST(Prometheus, NonFiniteGaugesUseExpositionSpellings) {
  MetricsRegistry reg;
  reg.gauge("g").set(std::numeric_limits<double>::quiet_NaN());
  EXPECT_NE(to_prometheus(reg).find("sldm_g NaN\n"), std::string::npos);
  reg.gauge("g").set(std::numeric_limits<double>::infinity());
  EXPECT_NE(to_prometheus(reg).find("sldm_g +Inf\n"), std::string::npos);
  reg.gauge("g").set(-std::numeric_limits<double>::infinity());
  EXPECT_NE(to_prometheus(reg).find("sldm_g -Inf\n"), std::string::npos);
}

TEST(Prometheus, LabelValuesAreEscaped) {
  TelemetryLabels labels;
  labels.session = "s\"1\\x\n";
  labels.model = "m";
  labels.threads = 2;
  EXPECT_EQ(prometheus_labels(labels),
            "session=\"s\\\"1\\\\x\\n\",model=\"m\",threads=\"2\"");
}

// --- TelemetryHub --------------------------------------------------------

TEST(TelemetryHub, DisabledPublishIsANoOp) {
  HubGuard guard;
  MetricsRegistry reg;
  reg.counter("c").add(1);
  TelemetryHub::instance().publish({"s1", "m", 1}, reg);
  EXPECT_EQ(TelemetryHub::instance().snapshot_count(), 0u);
}

TEST(TelemetryHub, RepublishReplacesAndAggregateMergesAcrossLabels) {
  HubGuard guard;
  TelemetryHub& hub = TelemetryHub::instance();
  hub.enable();

  MetricsRegistry first;
  first.counter("n").add(5);
  hub.publish({"s1", "m", 1}, first);
  // A session's registry is cumulative: the re-publish carries the new
  // total (9), and must *replace* the stored 5, not add to it.
  MetricsRegistry second;
  second.counter("n").add(9);
  hub.publish({"s1", "m", 1}, second);
  MetricsRegistry other;
  other.counter("n").add(3);
  hub.publish({"s2", "m", 2}, other);

  EXPECT_EQ(hub.snapshot_count(), 2u);
  EXPECT_EQ(hub.aggregate().find_counter("n")->value(), 12u);

  const std::string prom = hub.to_prometheus();
  // One TYPE line for the family, one labeled sample per snapshot.
  EXPECT_EQ(prom.find("# TYPE sldm_n_total counter"),
            prom.rfind("# TYPE sldm_n_total counter"));
  EXPECT_NE(prom.find("sldm_n_total{session=\"s1\",model=\"m\","
                      "threads=\"1\"} 9\n"),
            std::string::npos);
  EXPECT_NE(prom.find("sldm_n_total{session=\"s2\",model=\"m\","
                      "threads=\"2\"} 3\n"),
            std::string::npos);
}

TEST(TelemetryHub, AggregateIsDeterministicAcrossPublishOrder) {
  // Gauges are last-write-wins under merge, so the cross-label merge
  // order must not depend on publish order (snapshot storage is
  // publish-ordered): aggregate() sorts by labels first.
  const auto aggregate_after = [](bool reversed) {
    HubGuard guard;
    TelemetryHub& hub = TelemetryHub::instance();
    hub.enable();
    MetricsRegistry a;
    a.gauge("g").set(1.0);
    a.counter("c").add(1);
    MetricsRegistry b;
    b.gauge("g").set(2.0);
    b.counter("c").add(2);
    if (reversed) {
      hub.publish({"s2", "m", 1}, b);
      hub.publish({"s1", "m", 1}, a);
    } else {
      hub.publish({"s1", "m", 1}, a);
      hub.publish({"s2", "m", 1}, b);
    }
    return hub.aggregate();
  };
  const MetricsRegistry forward = aggregate_after(false);
  const MetricsRegistry backward = aggregate_after(true);
  EXPECT_EQ(forward.to_json(), backward.to_json());
  // Sorted label order puts s2 last, so its gauge value wins.
  EXPECT_DOUBLE_EQ(forward.find_gauge("g")->value(), 2.0);
  EXPECT_EQ(forward.find_counter("c")->value(), 3u);
}

TEST(TelemetryHub, RequestLabelRendersOnlyWhenSet) {
  TelemetryLabels plain;
  plain.session = "s1";
  plain.model = "m";
  plain.threads = 2;
  EXPECT_EQ(prometheus_labels(plain),
            "session=\"s1\",model=\"m\",threads=\"2\"");
  TelemetryLabels tagged = plain;
  tagged.request = "time";
  EXPECT_EQ(prometheus_labels(tagged),
            "session=\"s1\",model=\"m\",threads=\"2\",request=\"time\"");
  EXPECT_FALSE(plain == tagged);
}

TEST(TelemetryHub, ConcurrentPublishersAndReaders) {
  HubGuard guard;
  TelemetryHub& hub = TelemetryHub::instance();
  hub.enable();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&hub, t] {
      MetricsRegistry reg;
      reg.counter("work.items").add(10);
      reg.histogram("work.sizes", 0.0, 10.0, 5)
          .add(static_cast<double>(t));
      const TelemetryLabels labels{format("s%d", t), "test", 1};
      for (int i = 0; i < 200; ++i) hub.publish(labels, reg);
    });
  }
  // Render while the publishers run (tsan-checked in scripts/check.sh).
  for (int i = 0; i < 100; ++i) {
    (void)hub.to_prometheus();
    (void)hub.aggregate();
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(hub.snapshot_count(), 4u);
  const MetricsRegistry agg = hub.aggregate();
  EXPECT_EQ(agg.find_counter("work.items")->value(), 40u);
  EXPECT_EQ(agg.find_histogram("work.sizes")->total(), 4u);
}

TEST(TelemetryHub, SessionPublishesOnRunAndHubNeverPerturbsArrivals) {
  HubGuard guard;
  const Netlist nl = read_sim_file(kSampleSim);
  const Tech tech = nmos4();
  const LumpedRcModel model;

  using Arrivals =
      std::vector<std::pair<std::optional<double>, std::optional<double>>>;
  const auto run_once = [&](bool enabled) {
    if (enabled) {
      TelemetryHub::instance().enable();
    } else {
      TelemetryHub::instance().disable();
    }
    TimingAnalyzer analyzer(nl, tech, model);
    analyzer.add_all_input_events(1e-9);
    analyzer.run();
    Arrivals arrivals;
    for (NodeId n : nl.all_nodes()) {
      for (Transition dir : {Transition::kRise, Transition::kFall}) {
        const auto a = analyzer.arrival(n, dir);
        arrivals.emplace_back(
            a ? std::optional<double>(a->time) : std::nullopt,
            a ? std::optional<double>(a->slope) : std::nullopt);
      }
    }
    return arrivals;
  };

  const Arrivals off = run_once(false);
  EXPECT_EQ(TelemetryHub::instance().snapshot_count(), 0u);
  const Arrivals on = run_once(true);
  // run() published exactly one labeled snapshot...
  EXPECT_EQ(TelemetryHub::instance().snapshot_count(), 1u);
  const auto snaps = TelemetryHub::instance().snapshots();
  EXPECT_EQ(snaps[0].first.model, model.name());
  EXPECT_EQ(snaps[0].first.threads, 1);
  EXPECT_GT(
      snaps[0].second.find_counter("propagate.stage_evaluations")->value(),
      0u);
  // ...and the instrumented run is bit-identical to the dark one.
  EXPECT_EQ(off, on);
}

// --- Run ledger ----------------------------------------------------------

TEST(Ledger, AppendReadRoundTrip) {
  const std::string path = temp_path("roundtrip.jsonl");
  LedgerRecord r;
  r.kind = "run";
  r.version = "1.2.3";
  r.fingerprint = 0xdeadbeefull;
  r.source = "a.sim";
  r.model = "slope";
  r.threads = 4;
  r.extract_seconds = 0.25;
  r.propagate_seconds = 0.5;
  r.stage_evaluations = 123;
  r.has_critical = true;
  r.critical_node = "out";
  r.critical_dir = "rise";
  r.critical_arrival_s = 9.5e-9;
  r.outcome = "ok";
  append_ledger_record(path, r);

  LedgerRecord eco;
  eco.kind = "eco";
  eco.version = "1.2.3";
  eco.fingerprint = 0xdeadbeefull;
  eco.propagate_seconds = 1.0;
  eco.outcome = "ok";
  append_ledger_record(path, eco);

  const std::vector<LedgerRecord> records = read_ledger_file(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, "run");
  EXPECT_EQ(records[0].version, "1.2.3");
  EXPECT_EQ(records[0].fingerprint, 0xdeadbeefull);
  EXPECT_EQ(records[0].source, "a.sim");
  EXPECT_EQ(records[0].model, "slope");
  EXPECT_EQ(records[0].threads, 4);
  EXPECT_DOUBLE_EQ(records[0].extract_seconds, 0.25);
  EXPECT_DOUBLE_EQ(records[0].propagate_seconds, 0.5);
  EXPECT_EQ(records[0].stage_evaluations, 123u);
  ASSERT_TRUE(records[0].has_critical);
  EXPECT_EQ(records[0].critical_node, "out");
  EXPECT_EQ(records[0].critical_dir, "rise");
  EXPECT_DOUBLE_EQ(records[0].critical_arrival_s, 9.5e-9);
  EXPECT_EQ(records[0].outcome, "ok");
  EXPECT_GT(records[0].unix_ms, 0);  // stamped by append
  EXPECT_FALSE(records[1].has_critical);

  const std::string summary = summarize_ledger(records);
  EXPECT_NE(summary.find("00000000deadbeef"), std::string::npos);
  EXPECT_NE(summary.find("eco:1,run:1"), std::string::npos);
  EXPECT_NE(summary.find("2 ledger record(s)"), std::string::npos);
}

TEST(Ledger, MalformedLineReportsPathAndLine) {
  const std::string path = temp_path("malformed.jsonl");
  {
    std::ofstream out(path);
    out << "{\"kind\":\"run\",\"outcome\":\"ok\",\"threads\":1}\n"
        << "not json\n";
  }
  try {
    read_ledger_file(path);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos);
  }
}

TEST(Ledger, BadFingerprintIsANamedErrorWithLocation) {
  const std::string path = temp_path("badfp.jsonl");
  {
    std::ofstream out(path);
    out << "{\"kind\":\"run\",\"outcome\":\"ok\",\"threads\":1}\n"
        << "{\"kind\":\"run\",\"fingerprint\":\"xyzw\","
           "\"outcome\":\"ok\",\"threads\":1}\n";
  }
  try {
    read_ledger_file(path);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path + ":2:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bad fingerprint"), std::string::npos) << msg;
  }
}

TEST(Ledger, OverlongFingerprintIsRejected) {
  const std::string path = temp_path("longfp.jsonl");
  {
    std::ofstream out(path);
    // 17 hex digits: one past what a u64 can hold; the old stoull path
    // silently truncated values like this (or aborted on non-hex).
    out << "{\"kind\":\"run\",\"fingerprint\":\"00000000deadbeef0\","
           "\"outcome\":\"ok\",\"threads\":1}\n";
  }
  EXPECT_THROW(read_ledger_file(path), Error);
}

TEST(Ledger, MissingKindIsRejected) {
  const std::string path = temp_path("nokind.jsonl");
  {
    std::ofstream out(path);
    out << "{\"outcome\":\"ok\"}\n";
  }
  EXPECT_THROW(read_ledger_file(path), Error);
}

// --- CLI surfaces --------------------------------------------------------

/// Checks one line of exposition output: either a TYPE comment or
/// `name[{labels}] value`.
void expect_valid_exposition_line(const std::string& line) {
  if (starts_with(line, "# TYPE sldm_")) {
    const bool typed = line.find(" counter") != std::string::npos ||
                       line.find(" gauge") != std::string::npos ||
                       line.find(" histogram") != std::string::npos;
    EXPECT_TRUE(typed) << line;
    return;
  }
  ASSERT_TRUE(starts_with(line, "sldm_")) << line;
  const std::size_t space = line.rfind(' ');
  ASSERT_NE(space, std::string::npos) << line;
  std::string name = line.substr(0, space);
  const std::size_t brace = name.find('{');
  if (brace != std::string::npos) {
    EXPECT_EQ(name.back(), '}') << line;
    name = name.substr(0, brace);
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    EXPECT_TRUE(ok) << "bad metric name char in: " << line;
  }
  const std::string value = line.substr(space + 1);
  const bool numeric = value == "NaN" || value == "+Inf" ||
                       value == "-Inf" || parse_double(value).has_value();
  EXPECT_TRUE(numeric) << line;
}

TEST(CliTelemetry, TimePromEmitsValidExposition) {
  HubGuard guard;
  std::string out;
  const int rc =
      run({"time", kSampleSim, "--model", "lumped", "--prom", "-"}, &out);
  EXPECT_EQ(rc, 0);

  // The exposition block is the tail of stdout, starting at the first
  // family TYPE line.
  const std::size_t start = out.find("# TYPE ");
  ASSERT_NE(start, std::string::npos);
  const std::string prom = out.substr(start);
  std::istringstream lines(prom);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    expect_valid_exposition_line(line);
    ++count;
  }
  EXPECT_GT(count, 20u);

  // Every analyzer metric family is present, with session labels.
  for (const char* family :
       {"# TYPE sldm_propagate_stage_evaluations_total counter",
        "# TYPE sldm_propagate_worklist_pushes_total counter",
        "# TYPE sldm_propagate_arrival_updates_total counter",
        "# TYPE sldm_propagate_batches_total counter",
        "# TYPE sldm_eco_updates_total counter",
        "# TYPE sldm_extract_seconds gauge",
        "# TYPE sldm_propagate_seconds gauge",
        "# TYPE sldm_propagate_batch_size histogram",
        "# TYPE sldm_extract_stage_fan_in histogram",
        "# TYPE sldm_propagate_rc_path_depth histogram",
        "# TYPE sldm_propagate_eval_us histogram",
        "# TYPE sldm_propagate_queue_depth histogram",
        "# TYPE sldm_eco_frontier_size histogram"}) {
    EXPECT_NE(prom.find(family), std::string::npos) << family;
  }
  EXPECT_NE(prom.find("model=\"lumped-rc\""), std::string::npos);
  EXPECT_NE(prom.find("session=\"s"), std::string::npos);
}

TEST(CliTelemetry, StatsRendersTheHub) {
  HubGuard guard;
  std::string out;
  ASSERT_EQ(run({"stats"}, &out), 0);
  EXPECT_NE(out.find("0 snapshot(s)"), std::string::npos);

  // An in-process analysis populates the hub; stats then reads it back.
  ASSERT_EQ(run({"time", kSampleSim, "--model", "lumped"}, &out), 0);
  ASSERT_EQ(run({"stats"}, &out), 0);
  EXPECT_NE(out.find("1 snapshot(s)"), std::string::npos);
  EXPECT_NE(out.find("propagate.stage_evaluations"), std::string::npos);

  std::string json_out;
  ASSERT_EQ(run({"stats", "--json"}, &json_out), 0);
  const JsonValue parsed = parse_json(json_out);
  EXPECT_GT(parsed.at("counters").at("propagate.stage_evaluations")
                .as_number(),
            0.0);

  std::string prom_out;
  ASSERT_EQ(run({"stats", "--prom", "-"}, &prom_out), 0);
  EXPECT_NE(prom_out.find("# TYPE sldm_propagate_stage_evaluations_total"),
            std::string::npos);
}

TEST(CliTelemetry, LedgerFlagRecordsRunsAndSummarizes) {
  HubGuard guard;
  const std::string path = temp_path("cli_ledger.jsonl");
  std::string out;
  ASSERT_EQ(
      run({"time", kSampleSim, "--model", "lumped", "--ledger", path},
          &out),
      0);
  const std::vector<LedgerRecord> records = read_ledger_file(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, "run");
  EXPECT_EQ(records[0].outcome, "ok");
  EXPECT_EQ(records[0].version, sldm_version());
  EXPECT_NE(records[0].fingerprint, 0u);
  EXPECT_TRUE(records[0].has_critical);
  EXPECT_GT(records[0].stage_evaluations, 0u);

  std::string summary;
  ASSERT_EQ(run({"ledger", "summarize", path}, &summary), 0);
  EXPECT_NE(summary.find("run:1"), std::string::npos);
  EXPECT_NE(summary.find("lumped-rc"), std::string::npos);

  std::string err;
  EXPECT_EQ(run({"ledger", "oops", path}, &out, &err), 2);
}

TEST(CliTelemetry, BenchDiffGatesOnRegression) {
  const std::string old_path = temp_path("bench_old.jsonl");
  const std::string new_path = temp_path("bench_new.jsonl");
  {
    std::ofstream old_out(old_path);
    old_out << "{\"bench\":\"a\",\"wall_seconds\":1.0}\n"
            << "{\"bench\":\"a\",\"wall_seconds\":0.9}\n"  // best: 0.9
            << "{\"bench\":\"b\",\"wall_seconds\":2.0}\n";
  }

  // Identity: the same records diff clean.
  std::string out;
  EXPECT_EQ(run({"bench", "diff", old_path, old_path}, &out), 0);
  EXPECT_NE(out.find("0 regression(s)"), std::string::npos);

  // Within the bound: +5% passes a 50% gate.
  {
    std::ofstream new_out(new_path);
    new_out << "{\"bench\":\"a\",\"wall_seconds\":0.945}\n"
            << "{\"bench\":\"b\",\"wall_seconds\":2.1}\n";
  }
  EXPECT_EQ(run({"bench", "diff", old_path, new_path, "--max-regress",
                 "50"},
                &out),
            0);

  // Injected 2x regression fails the same gate.
  {
    std::ofstream new_out(new_path, std::ios::trunc);
    new_out << "{\"bench\":\"a\",\"wall_seconds\":1.8}\n"
            << "{\"bench\":\"b\",\"wall_seconds\":2.0}\n";
  }
  EXPECT_EQ(run({"bench", "diff", old_path, new_path, "--max-regress",
                 "50"},
                &out),
            1);
  EXPECT_NE(out.find("REGRESSED"), std::string::npos);

  // Nothing in common: a gate that compared nothing must fail.
  {
    std::ofstream new_out(new_path, std::ios::trunc);
    new_out << "{\"bench\":\"zzz\",\"wall_seconds\":1.0}\n";
  }
  std::string err;
  EXPECT_EQ(run({"bench", "diff", old_path, new_path}, &out, &err), 1);
  EXPECT_NE(err.find("nothing"), std::string::npos);
}

TEST(CliTelemetry, VersionUsesSharedVersionString) {
  std::string out;
  ASSERT_EQ(run({"version"}, &out), 0);
  EXPECT_NE(out.find(sldm_version()), std::string::npos);
}

}  // namespace
}  // namespace sldm
