// The .sldc compiled-design snapshot (FORMATS.md section 11):
// analysis over a serialize -> deserialize round trip must be
// bit-identical to direct analysis -- arrivals, critical paths, and
// explain traces, across every generator family at 1 and 4 threads --
// and corrupted, truncated, or version-skewed files must be rejected
// with an Error naming the problem.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "delay/rctree.h"
#include "delay/slope.h"
#include "design/compiled_design.h"
#include "design/snapshot.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "timing/explain.h"
#include "util/error.h"

namespace sldm {
namespace {

constexpr Seconds kSlope = 1e-9;

const Tech& tech_for(const GeneratedCircuit& g) {
  static const Tech nmos = nmos4();
  static const Tech cmos = cmos3();
  return g.style == Style::kNmos ? nmos : cmos;
}

/// One circuit per generator family in src/gen (same roster as
/// tests/parallel_timing_test.cpp).
std::vector<GeneratedCircuit> generator_suite() {
  std::vector<GeneratedCircuit> out;
  out.push_back(inverter_chain(Style::kCmos, 8, 3));
  out.push_back(inverter_chain(Style::kNmos, 6, 2));
  out.push_back(nand_chain(Style::kCmos, 3));
  out.push_back(nor_chain(Style::kNmos, 3));
  out.push_back(pass_chain(Style::kNmos, 5));
  out.push_back(barrel_shifter(Style::kCmos, 4));
  out.push_back(manchester_carry(Style::kNmos, 6));
  out.push_back(precharged_bus(Style::kCmos, 5));
  out.push_back(driver_chain(Style::kCmos, 4, 2.5, 80.0));
  out.push_back(address_decoder(Style::kCmos, 3));
  out.push_back(pla(Style::kCmos, 4, 5, 3, 0x1234));
  out.push_back(shift_register(Style::kCmos, 3));
  out.push_back(sram_read_column(Style::kNmos, 6));
  out.push_back(random_logic(Style::kCmos, 6, 10, 0xABCD));
  return out;
}

std::vector<std::uint8_t> snapshot_of(const GeneratedCircuit& g) {
  const auto design = CompiledDesign::compile(g.netlist, tech_for(g));
  return serialize_design(*design);
}

void expect_load_error(std::vector<std::uint8_t> bytes,
                       const std::string& expected_substring) {
  try {
    deserialize_design(bytes, "<test>");
    FAIL() << "load succeeded; expected an Error mentioning '"
           << expected_substring << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(expected_substring),
              std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(Snapshot, RoundTripIsBitIdenticalAcrossGeneratorFamilies) {
  const RcTreeModel model;
  for (const GeneratedCircuit& g : generator_suite()) {
    SCOPED_TRACE(g.name);
    const Tech& tech = tech_for(g);
    const LoadedDesign loaded =
        deserialize_design(snapshot_of(g), g.name);
    ASSERT_NE(loaded.design, nullptr);
    EXPECT_EQ(loaded.design->extract_seconds(), 0.0);
    EXPECT_EQ(loaded.design->fingerprint(), tech_fingerprint(tech));

    for (const int threads : {1, 4}) {
      AnalyzerOptions opts;
      opts.threads = threads;
      TimingAnalyzer direct(g.netlist, tech, model, opts);
      TimingAnalyzer reloaded(loaded.design, model, opts);
      direct.add_all_input_events(kSlope);
      reloaded.add_all_input_events(kSlope);
      direct.run();
      reloaded.run();

      ASSERT_EQ(direct.stages().size(), reloaded.stages().size());
      for (NodeId n : g.netlist.all_nodes()) {
        for (Transition dir : {Transition::kRise, Transition::kFall}) {
          const auto a = direct.arrival(n, dir);
          const auto b = reloaded.arrival(n, dir);
          ASSERT_EQ(a.has_value(), b.has_value())
              << g.netlist.node(n).name << ' ' << to_string(dir)
              << " at " << threads << " thread(s)";
          if (!a) continue;
          EXPECT_EQ(a->time, b->time);
          EXPECT_EQ(a->slope, b->slope);
          EXPECT_EQ(a->from_node, b->from_node);
          EXPECT_EQ(a->from_dir, b->from_dir);
          EXPECT_EQ(a->via_stage, b->via_stage);
        }
      }

      const auto worst = direct.worst_arrival(/*outputs_only=*/false);
      ASSERT_TRUE(worst.has_value());
      const auto pa = direct.critical_path(worst->node, worst->dir);
      const auto pb = reloaded.critical_path(worst->node, worst->dir);
      ASSERT_EQ(pa.size(), pb.size());
      for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].node, pb[i].node);
        EXPECT_EQ(pa[i].dir, pb[i].dir);
        EXPECT_EQ(pa[i].time, pb[i].time);
        EXPECT_EQ(pa[i].slope, pb[i].slope);
        EXPECT_EQ(pa[i].description, pb[i].description);
      }

      const ExplainReport ea =
          explain_arrival(direct, worst->node, worst->dir);
      const ExplainReport eb =
          explain_arrival(reloaded, worst->node, worst->dir);
      EXPECT_EQ(ea.arrival, eb.arrival);
      ASSERT_EQ(ea.steps.size(), eb.steps.size());
      for (std::size_t i = 0; i < ea.steps.size(); ++i) {
        EXPECT_EQ(ea.steps[i].node, eb.steps[i].node);
        EXPECT_EQ(ea.steps[i].arrival, eb.steps[i].arrival);
        EXPECT_EQ(ea.steps[i].slope, eb.steps[i].slope);
        EXPECT_EQ(ea.steps[i].delay, eb.steps[i].delay);
        EXPECT_EQ(ea.steps[i].stage, eb.steps[i].stage);
      }
    }
  }
}

TEST(Snapshot, FileRoundTripPreservesEmbeddedSlopeTables) {
  const GeneratedCircuit g = nand_chain(Style::kCmos, 3);
  const Tech& tech = tech_for(g);
  const auto design = CompiledDesign::compile(g.netlist, tech);
  const SlopeTables tables = SlopeTables::unit();
  const std::string path = "/tmp/sldm_snapshot_test.sldc";
  save_design_file(*design, path, &tables);
  const LoadedDesign loaded = load_design_file(path);
  std::remove(path.c_str());

  ASSERT_TRUE(loaded.slope_tables.has_value());
  const SlopeModel direct_model(SlopeTables::unit());
  const SlopeModel loaded_model(*loaded.slope_tables);
  TimingAnalyzer direct(g.netlist, tech, direct_model);
  TimingAnalyzer reloaded(loaded.design, loaded_model);
  direct.add_all_input_events(kSlope);
  reloaded.add_all_input_events(kSlope);
  direct.run();
  reloaded.run();
  const auto a = direct.worst_arrival(true);
  const auto b = reloaded.worst_arrival(true);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->time, b->time);
}

TEST(Snapshot, LoadedDesignSupportsEcoUpdates) {
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 5, 2);
  LoadedDesign loaded = deserialize_design(snapshot_of(g), g.name);
  const RcTreeModel model;
  // Moved in, not copied: a handle left outstanding would (correctly)
  // make update() refuse under the single-writer discipline.
  TimingAnalyzer analyzer(std::move(loaded.design), model);
  analyzer.add_all_input_events(kSlope);
  analyzer.run();

  Netlist& nl = analyzer.mutable_netlist();
  nl.set_capacitance(*nl.find_node("s2"), 25e-15);
  analyzer.update();

  TimingAnalyzer fresh(nl, tech_for(g), model);
  fresh.add_all_input_events(kSlope);
  fresh.run();
  for (NodeId n : nl.all_nodes()) {
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      const auto a = analyzer.arrival(n, dir);
      const auto b = fresh.arrival(n, dir);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a) continue;
      EXPECT_EQ(a->time, b->time);
      EXPECT_EQ(a->slope, b->slope);
    }
  }
}

TEST(Snapshot, RejectsBadMagic) {
  auto bytes = snapshot_of(inverter_chain(Style::kCmos, 3, 1));
  bytes[0] ^= 0xFF;
  expect_load_error(std::move(bytes), "not a .sldc");
}

TEST(Snapshot, RejectsFutureFormatVersion) {
  auto bytes = snapshot_of(inverter_chain(Style::kCmos, 3, 1));
  bytes[4] = static_cast<std::uint8_t>(kSnapshotFormatVersion + 1);
  expect_load_error(std::move(bytes), "not supported");
}

TEST(Snapshot, RejectsFlippedPayloadByte) {
  auto bytes = snapshot_of(inverter_chain(Style::kCmos, 3, 1));
  // Header is 16 bytes, each section header 20; flip a byte inside the
  // first (TECH) section payload.
  bytes[16 + 20 + 3] ^= 0x01;
  expect_load_error(std::move(bytes), "checksum mismatch");
}

TEST(Snapshot, RejectsTruncatedFile) {
  auto bytes = snapshot_of(inverter_chain(Style::kCmos, 3, 1));
  bytes.resize(bytes.size() - 7);
  expect_load_error(std::move(bytes), "truncated");
}

TEST(Snapshot, RejectsHeaderShorterThanFixedFields) {
  auto bytes = snapshot_of(inverter_chain(Style::kCmos, 3, 1));
  bytes.resize(10);
  expect_load_error(std::move(bytes), "truncated");
}

TEST(Snapshot, RejectsTechFingerprintMismatch) {
  auto bytes = snapshot_of(inverter_chain(Style::kCmos, 3, 1));
  // Corrupt the claimed fingerprint (header bytes 8..15); the embedded
  // TECH section no longer hashes to it.
  bytes[8] ^= 0xA5;
  expect_load_error(std::move(bytes), "fingerprint");
}

TEST(Snapshot, ErrorsNameTheOrigin) {
  auto bytes = snapshot_of(inverter_chain(Style::kCmos, 3, 1));
  bytes.resize(bytes.size() - 7);
  try {
    deserialize_design(bytes, "designs/adder.sldc");
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("designs/adder.sldc"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace sldm
