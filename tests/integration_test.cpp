// End-to-end integration tests: the full generator -> calibration ->
// analyzer -> analog-reference comparison, asserting the paper's
// qualitative claims hold in this reproduction.
#include <gtest/gtest.h>

#include "analog/elaborate.h"
#include "analog/transient.h"
#include "compare/harness.h"
#include "delay/slope.h"
#include "timing/analyzer.h"
#include "util/contracts.h"
#include "util/units.h"

namespace sldm {
namespace {

TEST(Integration, SlopeModelTracksSimulatorOnInverterChain) {
  const CompareContext& ctx = CompareContext::get(Style::kNmos);
  const ComparisonResult r =
      run_comparison(inverter_chain(Style::kNmos, 4, 2), ctx, 2e-9);
  EXPECT_LT(std::abs(r.model("slope").error_pct), 20.0)
      << "slope model should stay near the simulator";
  EXPECT_GT(r.reference_delay, 0.0);
}

TEST(Integration, SlopeBeatsSlopeBlindModelsOnSlowInput) {
  const CompareContext& ctx = CompareContext::get(Style::kNmos);
  // A very slow input edge is where input-slope blindness hurts.
  const ComparisonResult r =
      run_comparison(inverter_chain(Style::kNmos, 3, 1), ctx, 8e-9);
  const double e_slope = std::abs(r.model("slope").error_pct);
  const double e_rctree = std::abs(r.model("rc-tree").error_pct);
  EXPECT_LT(e_slope, e_rctree)
      << "slope=" << e_slope << "% rc-tree=" << e_rctree << "%";
}

TEST(Integration, LumpedOverestimatesPassChains) {
  const CompareContext& ctx = CompareContext::get(Style::kNmos);
  const ComparisonResult r =
      run_comparison(pass_chain(Style::kNmos, 6), ctx, 1e-9);
  EXPECT_GT(r.model("lumped-rc").delay, 1.3 * r.model("rc-tree").delay)
      << "the distributed chain is what separates the two RC models";
}

TEST(Integration, CmosPipelineWorksEndToEnd) {
  const CompareContext& ctx = CompareContext::get(Style::kCmos);
  const ComparisonResult r =
      run_comparison(inverter_chain(Style::kCmos, 3, 2), ctx, 2e-9);
  EXPECT_GT(r.reference_delay, 0.0);
  EXPECT_LT(std::abs(r.model("slope").error_pct), 30.0);
  EXPECT_EQ(r.models.size(), 3u);
}

TEST(Integration, PrechargedBusDischargeIsPredicted) {
  const CompareContext& ctx = CompareContext::get(Style::kNmos);
  const ComparisonResult r =
      run_comparison(precharged_bus(Style::kNmos, 4), ctx, 1e-9);
  EXPECT_GT(r.reference_delay, 0.0);
  // All three models must at least get the order of magnitude right.
  for (const ModelResult& m : r.models) {
    EXPECT_GT(m.delay, 0.1 * r.reference_delay) << m.model;
    EXPECT_LT(m.delay, 10.0 * r.reference_delay) << m.model;
  }
}

TEST(Integration, ManchesterCarryRipples) {
  const CompareContext& ctx = CompareContext::get(Style::kNmos);
  const ComparisonResult r4 =
      run_comparison(manchester_carry(Style::kNmos, 4), ctx, 1e-9);
  const ComparisonResult r8 =
      run_comparison(manchester_carry(Style::kNmos, 8), ctx, 1e-9);
  EXPECT_GT(r8.reference_delay, r4.reference_delay)
      << "longer chains ripple longer (simulator)";
  EXPECT_GT(r8.model("rc-tree").delay, r4.model("rc-tree").delay)
      << "longer chains ripple longer (model)";
}

TEST(Integration, AnalyzerIsMuchFasterThanSimulator) {
  const CompareContext& ctx = CompareContext::get(Style::kNmos);
  const ComparisonResult r =
      run_comparison(barrel_shifter(Style::kNmos, 4), ctx, 1e-9);
  // The headline speed claim; a 10x floor is very conservative (the
  // observed gap is orders of magnitude).
  EXPECT_LT(r.model("slope").analyze_time, r.simulate_time / 10.0);
}

TEST(Integration, RunAnalyzerHelperReportsWork) {
  const CompareContext& ctx = CompareContext::get(Style::kNmos);
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 4, 1);
  const AnalyzeOnlyResult a =
      run_analyzer(g, ctx.tech(), *ctx.models()[1], 1e-9);
  EXPECT_GT(a.delay, 0.0);
  EXPECT_GT(a.stage_evaluations, 0u);
}

TEST(Integration, PredictedOutputSlopeTracksSimulator) {
  // The slope model's second output -- the edge rate it hands to the
  // next stage -- must track the simulator's measured transition time.
  const CompareContext& ctx = CompareContext::get(Style::kNmos);
  const Tech& tech = ctx.tech();
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 2, 2);

  // Simulate and measure the transition time at s1 (first stage out).
  const NodeId s1 = *g.netlist.find_node("s1");
  std::vector<Stimulus> stimuli;
  stimuli.push_back({g.input, PwlSource::edge(0.0, tech.vdd(), 2e-9, 2e-9)});
  const Elaboration elab = elaborate(g.netlist, tech, stimuli);
  TransientOptions topt;
  topt.t_stop = 30e-9;
  const TransientResult sim = simulate(elab.circuit(), topt);
  const Waveform& w = sim.at(elab.analog(s1));
  const auto measured = w.transition_time(w.min_value(), w.max_value(),
                                          Transition::kFall, 1e-9);
  ASSERT_TRUE(measured.has_value());

  SlopeModel model(ctx.calibration().tables);
  TimingAnalyzer an(g.netlist, tech, model);
  an.add_input_event(g.input, Transition::kRise, 0.0, 2e-9);
  an.run();
  const auto arrival = an.arrival(s1, Transition::kFall);
  ASSERT_TRUE(arrival.has_value());
  EXPECT_NEAR(arrival->slope / *measured, 1.0, 0.35)
      << "predicted " << to_ns(arrival->slope) << " ns vs measured "
      << to_ns(*measured) << " ns";
}

TEST(Integration, ComparisonResultModelLookup) {
  const CompareContext& ctx = CompareContext::get(Style::kNmos);
  const ComparisonResult r =
      run_comparison(nand_chain(Style::kNmos, 2), ctx, 1e-9);
  EXPECT_EQ(r.model("slope").model, "slope");
  EXPECT_THROW(r.model("nonexistent"), ContractViolation);
}

}  // namespace
}  // namespace sldm
