// Tests for src/tech: parameter sets, derived capacitances/resistances,
// analytic resistance seeds, and the tech file round-trip.
#include <gtest/gtest.h>

#include <sstream>

#include "tech/tech.h"
#include "tech/tech_io.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/units.h"

namespace sldm {
namespace {

using namespace units;

TEST(Tech, PresetsHaveExpectedDeviceTypes) {
  const Tech n = nmos4();
  EXPECT_TRUE(n.has(TransistorType::kNEnhancement));
  EXPECT_TRUE(n.has(TransistorType::kNDepletion));
  EXPECT_FALSE(n.has(TransistorType::kPEnhancement));
  const Tech c = cmos3();
  EXPECT_TRUE(c.has(TransistorType::kNEnhancement));
  EXPECT_FALSE(c.has(TransistorType::kNDepletion));
  EXPECT_TRUE(c.has(TransistorType::kPEnhancement));
}

TEST(Tech, SupplyAndThreshold) {
  const Tech t = nmos4();
  EXPECT_DOUBLE_EQ(t.vdd(), 5.0);
  EXPECT_DOUBLE_EQ(t.v_switch(), 2.5);
  EXPECT_GT(t.params(TransistorType::kNEnhancement).vt, 0.0);
  EXPECT_LT(t.params(TransistorType::kNDepletion).vt, 0.0);
  EXPECT_LT(cmos3().params(TransistorType::kPEnhancement).vt, 0.0);
}

TEST(Tech, GateCapScalesWithArea) {
  const Tech t = nmos4();
  Transistor a{.type = TransistorType::kNEnhancement,
               .width = 8 * um,
               .length = 4 * um};
  Transistor b = a;
  b.width = 16 * um;
  b.length = 8 * um;
  // 4x the area, 2x the overlap width: cap strictly more than 2x, less
  // than 4x of the original only if overlap dominates -- check bounds.
  const Farads ca = t.gate_cap(a);
  const Farads cb = t.gate_cap(b);
  EXPECT_GT(cb, 2.0 * ca);
  EXPECT_LE(cb, 4.0 * ca + 1e-18);
  EXPECT_GT(ca, 0.0);
}

TEST(Tech, DiffusionCapScalesWithWidth) {
  const Tech t = nmos4();
  Transistor a{.type = TransistorType::kNEnhancement,
               .width = 8 * um,
               .length = 4 * um};
  Transistor b = a;
  b.width = 24 * um;
  EXPECT_NEAR(t.diffusion_cap(b), 3.0 * t.diffusion_cap(a), 1e-20);
}

TEST(Tech, NodeCapacitanceSumsAllContributions) {
  const Tech t = nmos4();
  Netlist nl;
  const NodeId vdd = nl.mark_power("vdd");
  const NodeId gnd = nl.mark_ground("gnd");
  const NodeId in = nl.mark_input("in");
  const NodeId out = nl.add_node("out");
  nl.add_cap(out, 10 * fF);
  const DeviceId pd = nl.add_transistor(TransistorType::kNEnhancement, in,
                                        gnd, out, 8 * um, 4 * um);
  const DeviceId load = nl.add_transistor(TransistorType::kNDepletion, out,
                                          out, vdd, 4 * um, 8 * um);
  const Farads expected = 10 * fF + t.gate_cap(nl.device(load)) +
                          t.diffusion_cap(nl.device(pd)) +
                          t.diffusion_cap(nl.device(load));
  EXPECT_NEAR(t.node_capacitance(nl, out), expected, 1e-20);
  // The input node carries only the pull-down's gate cap.
  EXPECT_NEAR(t.node_capacitance(nl, in), t.gate_cap(nl.device(pd)), 1e-20);
}

TEST(Tech, ResistanceScalesWithGeometry) {
  const Tech t = nmos4();
  Transistor a{.type = TransistorType::kNEnhancement,
               .width = 8 * um,
               .length = 4 * um};
  Transistor b = a;
  b.width = 4 * um;  // half the width -> twice the resistance
  EXPECT_NEAR(t.resistance(b, Transition::kFall),
              2.0 * t.resistance(a, Transition::kFall), 1e-6);
}

TEST(Tech, AnalyticSeedsAreOrderedSensibly) {
  const Tech t = nmos4();
  // Passing a high through an n device is much weaker than pulling low.
  EXPECT_GT(t.resistance_sq(TransistorType::kNEnhancement, Transition::kRise),
            t.resistance_sq(TransistorType::kNEnhancement,
                            Transition::kFall));
  // The depletion load is weaker per square than a fully driven
  // enhancement pull-down.
  EXPECT_GT(t.resistance_sq(TransistorType::kNDepletion, Transition::kRise),
            t.resistance_sq(TransistorType::kNEnhancement,
                            Transition::kFall));
}

TEST(Tech, AnalyticSeedMagnitudeIsPlausible) {
  // The classic Mead-Conway figure: ~10 kOhm/square for a driven nMOS
  // pull-down.  Accept a wide band; this is a sanity anchor, not a spec.
  const Tech t = nmos4();
  const Ohms r =
      t.resistance_sq(TransistorType::kNEnhancement, Transition::kFall);
  EXPECT_GT(r, 2e3);
  EXPECT_LT(r, 1e5);
}

TEST(Tech, SetResistanceValidates) {
  Tech t = nmos4();
  t.set_resistance_sq(TransistorType::kNEnhancement, Transition::kFall, 9e3);
  EXPECT_DOUBLE_EQ(
      t.resistance_sq(TransistorType::kNEnhancement, Transition::kFall),
      9e3);
  EXPECT_THROW(t.set_resistance_sq(TransistorType::kNEnhancement,
                                   Transition::kFall, 0.0),
               ContractViolation);
}

TEST(Tech, CmosPDeviceWeakerThanN) {
  const Tech t = cmos3();
  EXPECT_GT(t.resistance_sq(TransistorType::kPEnhancement, Transition::kRise),
            t.resistance_sq(TransistorType::kNEnhancement,
                            Transition::kFall));
}

// --- tech_io -------------------------------------------------------------

TEST(TechIo, RoundTripPreservesEverything) {
  const Tech a = nmos4();
  std::stringstream ss;
  write_tech(a, ss);
  const Tech b = read_tech(ss, "<roundtrip>");
  EXPECT_EQ(b.name(), a.name());
  EXPECT_DOUBLE_EQ(b.vdd(), a.vdd());
  for (TransistorType type :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion}) {
    const DeviceParams& pa = a.params(type);
    const DeviceParams& pb = b.params(type);
    EXPECT_NEAR(pb.vt, pa.vt, 1e-12);
    // Values are serialized with %.6g, so expect ~6 significant digits.
    EXPECT_NEAR(pb.kp / pa.kp, 1.0, 1e-5);
    EXPECT_NEAR(pb.cox / pa.cox, 1.0, 1e-5);
    EXPECT_NEAR(pb.r_up_sq / pa.r_up_sq, 1.0, 1e-5);
    EXPECT_NEAR(pb.r_down_sq / pa.r_down_sq, 1.0, 1e-5);
  }
}

TEST(TechIo, RejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return read_tech(in, "<test>");
  };
  EXPECT_THROW(parse(""), ParseError);                      // no header
  EXPECT_THROW(parse("tech x vdd 0\n"), ParseError);        // bad vdd
  EXPECT_THROW(parse("device e vt 1\n"), ParseError);       // before header
  EXPECT_THROW(parse("tech x vdd 5\ndevice q vt 1\n"), ParseError);
  EXPECT_THROW(parse("tech x vdd 5\ndevice e vt abc\n"), ParseError);
  EXPECT_THROW(parse("tech x vdd 5\ndevice e bogus 1\n"), ParseError);
  EXPECT_THROW(parse("tech x vdd 5\nwhat 1\n"), ParseError);
}

TEST(TechIo, MissingFileThrows) {
  EXPECT_THROW(read_tech_file("/nonexistent/tech.txt"), Error);
}

}  // namespace
}  // namespace sldm
