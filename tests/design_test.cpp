// The CompiledDesign / Session split: N concurrent sessions over one
// shared immutable design must be bit-identical to N independent cold
// analyzers, and the single-writer ECO discipline must hold (update()
// refuses while share_design() handles are outstanding).
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "delay/lumped.h"
#include "delay/rctree.h"
#include "delay/slope.h"
#include "design/compiled_design.h"
#include "design/session.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/analyzer.h"
#include "util/error.h"

namespace sldm {
namespace {

constexpr Seconds kSlope = 1e-9;

const Tech& tech_for(const GeneratedCircuit& g) {
  static const Tech nmos = nmos4();
  static const Tech cmos = cmos3();
  return g.style == Style::kNmos ? nmos : cmos;
}

/// Every arrival of `session` bit-equal to `reference`'s.
void expect_same_arrivals(const Netlist& nl, const Session& session,
                          const TimingAnalyzer& reference) {
  for (NodeId n : nl.all_nodes()) {
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      const auto a = session.arrival(n, dir);
      const auto b = reference.arrival(n, dir);
      ASSERT_EQ(a.has_value(), b.has_value())
          << nl.node(n).name << ' ' << to_string(dir);
      if (!a) continue;
      EXPECT_EQ(a->time, b->time);
      EXPECT_EQ(a->slope, b->slope);
      EXPECT_EQ(a->from_node, b->from_node);
      EXPECT_EQ(a->from_dir, b->from_dir);
      EXPECT_EQ(a->via_stage, b->via_stage);
    }
  }
}

TEST(Design, CompileOwnsItsInputs) {
  std::shared_ptr<const CompiledDesign> design;
  {
    const GeneratedCircuit g = inverter_chain(Style::kCmos, 5, 2);
    design = CompiledDesign::compile(g.netlist, tech_for(g));
    // g (and its netlist) die here; the design must not care.
  }
  EXPECT_TRUE(design->owns_netlist());
  EXPECT_GT(design->stages().size(), 0u);
  EXPECT_EQ(design->stage_store().size(), design->stages().size());
  EXPECT_EQ(design->built_revision(), design->netlist().revision());

  const RcTreeModel model;
  Session session(design, model);
  session.add_all_input_events(kSlope);
  session.run();
  EXPECT_TRUE(session.worst_arrival(false).has_value());
}

TEST(Design, FingerprintSeparatesTechnologies) {
  EXPECT_EQ(tech_fingerprint(nmos4()), tech_fingerprint(nmos4()));
  EXPECT_NE(tech_fingerprint(nmos4()), tech_fingerprint(cmos3()));
  Tech tweaked = nmos4();
  tweaked.params(TransistorType::kNEnhancement).vt += 1e-6;
  EXPECT_NE(tech_fingerprint(nmos4()), tech_fingerprint(tweaked));
}

// The ISSUE acceptance test: two (here three) sessions with *different*
// delay models run concurrently over one shared CompiledDesign, and
// each matches an independent cold analyzer over the same netlist.
TEST(Design, ConcurrentSessionsMatchIndependentColdRuns) {
  const GeneratedCircuit g = barrel_shifter(Style::kCmos, 4);
  const Tech& tech = tech_for(g);
  const std::shared_ptr<const CompiledDesign> design =
      CompiledDesign::compile(g.netlist, tech);

  const RcTreeModel rctree;
  const LumpedRcModel lumped;
  const SlopeModel slope(SlopeTables::unit());
  const DelayModel* const models[] = {&rctree, &lumped, &slope};

  std::vector<std::unique_ptr<Session>> sessions;
  for (const DelayModel* model : models) {
    sessions.push_back(std::make_unique<Session>(design, *model));
  }
  std::vector<std::thread> workers;
  workers.reserve(sessions.size());
  for (auto& session : sessions) {
    workers.emplace_back([&session] {
      session->add_all_input_events(kSlope);
      session->run();
    });
  }
  for (auto& w : workers) w.join();

  for (std::size_t i = 0; i < sessions.size(); ++i) {
    TimingAnalyzer cold(g.netlist, tech, *models[i]);
    cold.add_all_input_events(kSlope);
    cold.run();
    expect_same_arrivals(g.netlist, *sessions[i], cold);
    // Work accounting is per-session state, not shared through the
    // design.
    EXPECT_EQ(sessions[i]->stage_evaluations(), cold.stage_evaluations());
  }
}

TEST(Design, SessionsWithDifferentThreadCountsAgree) {
  const GeneratedCircuit g = manchester_carry(Style::kNmos, 6);
  const std::shared_ptr<const CompiledDesign> design =
      CompiledDesign::compile(g.netlist, tech_for(g));
  const RcTreeModel model;

  Session seq(design, model, SessionOptions{64, 1});
  Session par(design, model, SessionOptions{64, 4});
  seq.add_all_input_events(kSlope);
  par.add_all_input_events(kSlope);
  seq.run();
  par.run();
  for (NodeId n : g.netlist.all_nodes()) {
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      const auto a = seq.arrival(n, dir);
      const auto b = par.arrival(n, dir);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a) continue;
      EXPECT_EQ(a->time, b->time);
      EXPECT_EQ(a->slope, b->slope);
      EXPECT_EQ(a->via_stage, b->via_stage);
    }
  }
}

TEST(Design, UpdateRefusesWhileDesignIsShared) {
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 4, 2);
  Netlist nl = g.netlist;
  const Tech& tech = tech_for(g);
  const RcTreeModel model;

  TimingAnalyzer analyzer(nl, tech, model);
  analyzer.add_all_input_events(kSlope);
  analyzer.run();

  auto handle = analyzer.share_design();
  nl.set_capacitance(*nl.find_node("s1"), 10e-15);
  EXPECT_THROW(analyzer.update(), Error);

  // Dropping the outstanding handle restores exclusive ownership.
  handle.reset();
  analyzer.update();
  EXPECT_TRUE(analyzer.worst_arrival(false).has_value());
}

TEST(Design, SessionRefusesToRunOutOfSync) {
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 4, 2);
  Netlist nl = g.netlist;
  const RcTreeModel model;
  TimingAnalyzer analyzer(nl, g.style == Style::kNmos ? nmos4() : cmos3(),
                          model);
  analyzer.add_all_input_events(kSlope);
  nl.set_capacitance(*nl.find_node("s1"), 10e-15);
  EXPECT_THROW(analyzer.run(), Error);  // design is stale: update() first
  analyzer.update();
  analyzer.run();
  EXPECT_TRUE(analyzer.worst_arrival(false).has_value());
}

TEST(Design, MutableNetlistRequiresOwnership) {
  const GeneratedCircuit g = inverter_chain(Style::kCmos, 3, 1);
  const RcTreeModel model;
  TimingAnalyzer borrowed(g.netlist, tech_for(g), model);
  EXPECT_THROW(borrowed.mutable_netlist(), Error);
}

}  // namespace
}  // namespace sldm
