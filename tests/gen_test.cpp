// Tests for the benchmark generators: structural validity (checker-clean
// netlists), expected device counts, and harness metadata.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "netlist/checks.h"
#include "util/contracts.h"

namespace sldm {
namespace {

void expect_clean(const GeneratedCircuit& g) {
  const auto ds = check(g.netlist);
  EXPECT_TRUE(all_ok(ds)) << g.name << ":\n" << to_string(g.netlist, ds);
}

TEST(Generators, InverterChainStructure) {
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 3, 1);
  expect_clean(g);
  // 2 devices per nMOS inverter.
  EXPECT_EQ(g.netlist.device_count(), 6u);
  EXPECT_TRUE(g.netlist.node(g.input).is_input);
  EXPECT_TRUE(g.netlist.node(g.output).is_output);
}

TEST(Generators, InverterChainFanoutAddsLoads) {
  const GeneratedCircuit f1 = inverter_chain(Style::kCmos, 3, 1);
  const GeneratedCircuit f4 = inverter_chain(Style::kCmos, 3, 4);
  EXPECT_GT(f4.netlist.device_count(), f1.netlist.device_count());
  expect_clean(f4);
}

TEST(Generators, CmosGateDeviceCounts) {
  // CMOS NAND-k: k series n + k parallel p, plus the 2-device output
  // inverter.
  const GeneratedCircuit g = nand_chain(Style::kCmos, 3);
  expect_clean(g);
  EXPECT_EQ(g.netlist.device_count(), 3u + 3u + 2u);
  EXPECT_EQ(g.high_inputs.size(), 2u);
}

TEST(Generators, NmosGateDeviceCounts) {
  // nMOS NOR-k: k parallel pull-downs + 1 depletion load + inverter (2).
  const GeneratedCircuit g = nor_chain(Style::kNmos, 2);
  expect_clean(g);
  EXPECT_EQ(g.netlist.device_count(), 2u + 1u + 2u);
  EXPECT_EQ(g.low_inputs.size(), 1u);
}

TEST(Generators, PassChainLengthsAndSelects) {
  const GeneratedCircuit g = pass_chain(Style::kNmos, 5);
  expect_clean(g);
  // driver inverter (2) + 5 passes + output inverter (2).
  EXPECT_EQ(g.netlist.device_count(), 9u);
  ASSERT_EQ(g.high_inputs.size(), 1u);
  EXPECT_TRUE(g.netlist.node(g.high_inputs[0]).is_input);
}

TEST(Generators, BarrelShifterIsQuadraticInBits) {
  const GeneratedCircuit g = barrel_shifter(Style::kNmos, 4);
  expect_clean(g);
  // 16 pass transistors + driver (2) + output inverter (2).
  EXPECT_EQ(g.netlist.device_count(), 20u);
  // One select high, the rest low; other data lines held low.
  EXPECT_EQ(g.high_inputs.size(), 1u);
  EXPECT_EQ(g.low_inputs.size(), 3u + 3u);
}

TEST(Generators, ManchesterCarryHasPrechargedNodes) {
  const GeneratedCircuit g = manchester_carry(Style::kNmos, 4);
  expect_clean(g);
  int precharged = 0;
  for (NodeId n : g.netlist.node_ids()) {
    if (g.netlist.node(n).is_precharged) ++precharged;
  }
  EXPECT_EQ(precharged, 4);
  EXPECT_EQ(g.high_inputs.size(), 3u);  // propagate gates
}

TEST(Generators, PrechargedBusDriversShareTheBus) {
  const GeneratedCircuit g = precharged_bus(Style::kNmos, 5);
  expect_clean(g);
  const NodeId bus = *g.netlist.find_node("bus");
  EXPECT_TRUE(g.netlist.node(bus).is_precharged);
  // 5 two-device stacks on the bus + output inverter; the inverter's
  // devices touch "out", so only the 5 select transistors channel at
  // the bus itself.
  EXPECT_EQ(g.netlist.device_count(), 12u);
  EXPECT_EQ(g.netlist.channels_at(bus).size(), 5u);
  EXPECT_GT(g.netlist.node(bus).cap, 0.0) << "bus wiring cap annotated";
}

TEST(Generators, DriverChainTapersStrength) {
  const GeneratedCircuit g = driver_chain(Style::kCmos, 3, 3.0, 500.0);
  expect_clean(g);
  // Successive inverters should have geometrically wider devices.
  std::vector<Meters> widths;
  for (DeviceId d : g.netlist.device_ids()) {
    if (g.netlist.device(d).type == TransistorType::kNEnhancement) {
      widths.push_back(g.netlist.device(d).width);
    }
  }
  ASSERT_EQ(widths.size(), 3u);
  EXPECT_NEAR(widths[1] / widths[0], 3.0, 1e-9);
  EXPECT_NEAR(widths[2] / widths[1], 3.0, 1e-9);
  EXPECT_GT(g.netlist.node(g.output).cap, 0.0);
}

TEST(Generators, RandomLogicIsDeterministicInSeed) {
  const GeneratedCircuit a = random_logic(Style::kCmos, 3, 4, 42);
  const GeneratedCircuit b = random_logic(Style::kCmos, 3, 4, 42);
  const GeneratedCircuit c = random_logic(Style::kCmos, 3, 4, 43);
  EXPECT_EQ(a.netlist.device_count(), b.netlist.device_count());
  EXPECT_EQ(a.netlist.node_count(), b.netlist.node_count());
  // Different seeds almost surely differ in structure size.
  EXPECT_TRUE(a.netlist.device_count() != c.netlist.device_count() ||
              a.netlist.node_count() != c.netlist.node_count());
  expect_clean(a);
}

TEST(Generators, ParameterValidation) {
  EXPECT_THROW(inverter_chain(Style::kNmos, 0, 1), ContractViolation);
  EXPECT_THROW(inverter_chain(Style::kNmos, 1, 0), ContractViolation);
  EXPECT_THROW(pass_chain(Style::kNmos, 0), ContractViolation);
  EXPECT_THROW(driver_chain(Style::kNmos, 1, 0.5, 10.0), ContractViolation);
  EXPECT_THROW(random_logic(Style::kNmos, 0, 1, 1), ContractViolation);
}

// Property: every circuit in the accuracy suite, in both styles, is
// checker-clean and carries complete harness metadata.
class SuiteProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SuiteProperty, CleanAndComplete) {
  const Style style =
      std::get<0>(GetParam()) == 0 ? Style::kNmos : Style::kCmos;
  const auto suite = accuracy_suite(style);
  const auto& g = suite[static_cast<std::size_t>(std::get<1>(GetParam()))];
  expect_clean(g);
  EXPECT_FALSE(g.name.empty());
  EXPECT_TRUE(g.netlist.node(g.input).is_input) << g.name;
  EXPECT_TRUE(g.netlist.node(g.output).is_output) << g.name;
  for (NodeId n : g.high_inputs) {
    EXPECT_TRUE(g.netlist.node(n).is_input) << g.name;
  }
  for (NodeId n : g.low_inputs) {
    EXPECT_TRUE(g.netlist.node(n).is_input) << g.name;
  }
  EXPECT_GT(g.netlist.device_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothStyles, SuiteProperty,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Range(0, 16)));

}  // namespace
}  // namespace sldm
