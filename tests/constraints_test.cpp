// Tests for timing-constraint files and their application.
#include <gtest/gtest.h>

#include <sstream>

#include "delay/rctree.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/constraints.h"
#include "timing/slack.h"
#include "util/error.h"
#include "util/units.h"

namespace sldm {
namespace {

Constraints parse(const std::string& text) {
  std::istringstream in(text);
  return read_constraints(in, "<test>");
}

TEST(Constraints, ParsesDirectives) {
  const Constraints c = parse(
      "# header comment\n"
      "input phi rise at 0 slope 1.5\n"
      "input data both at 2 slope 2\n"
      "input clr fall at 0.5 slope 0.25\n"
      "require 45\n");
  ASSERT_EQ(c.inputs.size(), 3u);
  EXPECT_EQ(c.inputs[0].node, "phi");
  EXPECT_EQ(c.inputs[0].dir, Transition::kRise);
  EXPECT_DOUBLE_EQ(c.inputs[0].time, 0.0);
  EXPECT_DOUBLE_EQ(c.inputs[0].slope, 1.5e-9);
  EXPECT_FALSE(c.inputs[1].dir.has_value());
  EXPECT_DOUBLE_EQ(c.inputs[1].time, 2e-9);
  EXPECT_EQ(c.inputs[2].dir, Transition::kFall);
  ASSERT_TRUE(c.required.has_value());
  EXPECT_DOUBLE_EQ(*c.required, 45e-9);
}

TEST(Constraints, RejectsMalformedDirectives) {
  EXPECT_THROW(parse("input x rise at 0\n"), ParseError);
  EXPECT_THROW(parse("input x sideways at 0 slope 1\n"), ParseError);
  EXPECT_THROW(parse("input x rise at abc slope 1\n"), ParseError);
  EXPECT_THROW(parse("input x rise at 0 slope -1\n"), ParseError);
  EXPECT_THROW(parse("require\n"), ParseError);
  EXPECT_THROW(parse("require 0\n"), ParseError);
  EXPECT_THROW(parse("frobnicate 3\n"), ParseError);
}

TEST(Constraints, RoundTrip) {
  const Constraints a = parse(
      "input a rise at 1 slope 0.5\ninput b both at 0 slope 2\nrequire 30\n");
  std::stringstream ss;
  write_constraints(a, ss);
  const Constraints b = read_constraints(ss, "<rt>");
  ASSERT_EQ(b.inputs.size(), a.inputs.size());
  for (std::size_t i = 0; i < a.inputs.size(); ++i) {
    EXPECT_EQ(b.inputs[i].node, a.inputs[i].node);
    EXPECT_EQ(b.inputs[i].dir, a.inputs[i].dir);
    EXPECT_NEAR(b.inputs[i].time, a.inputs[i].time, 1e-18);
    EXPECT_NEAR(b.inputs[i].slope, a.inputs[i].slope, 1e-18);
  }
  EXPECT_EQ(b.required, a.required);
}

TEST(Constraints, ApplySeedsTheAnalyzer) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 2, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  const Constraints c = parse("input in rise at 1 slope 2\nrequire 20\n");
  c.apply(g.netlist, an);
  an.run();
  const auto info = an.arrival(g.output, Transition::kRise);
  ASSERT_TRUE(info.has_value());
  EXPECT_GT(info->time, 1e-9) << "event starts at the declared 1 ns";

  const SlackReport report = compute_slack(g.netlist, an, *c.required);
  EXPECT_TRUE(report.violations().empty());
}

TEST(Constraints, ApplyBothSeedsTwoEvents) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 2, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  parse("input in both at 0 slope 1\n").apply(g.netlist, an);
  an.run();
  const NodeId s1 = *g.netlist.find_node("s1");
  EXPECT_TRUE(an.arrival(s1, Transition::kRise).has_value());
  EXPECT_TRUE(an.arrival(s1, Transition::kFall).has_value());
}

TEST(Constraints, ApplyRejectsBadNodes) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 1, 1);
  {
    TimingAnalyzer an(g.netlist, tech, model);
    EXPECT_THROW(
        parse("input nosuch rise at 0 slope 1\n").apply(g.netlist, an),
        Error);
  }
  {
    TimingAnalyzer an(g.netlist, tech, model);
    EXPECT_THROW(parse("input s1 rise at 0 slope 1\n").apply(g.netlist, an),
                 Error)
        << "s1 is internal, not a chip input";
  }
}

TEST(Constraints, MissingFileThrows) {
  EXPECT_THROW(read_constraints_file("/nonexistent/x.ct"), Error);
}

}  // namespace
}  // namespace sldm
