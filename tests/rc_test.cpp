// Tests for RC tree analysis (Elmore, RPH bounds) and resistive
// networks (effective resistance), with textbook oracles.
#include <gtest/gtest.h>

#include "rc/rc_tree.h"
#include "rc/resistive_network.h"
#include "util/contracts.h"
#include "util/error.h"

namespace sldm {
namespace {

TEST(RcTree, SingleSectionElmoreIsRc) {
  RcTree t;
  const std::size_t n = t.add_node(0, 1e3, 1e-12);
  EXPECT_DOUBLE_EQ(t.elmore(n), 1e-9);
  EXPECT_DOUBLE_EQ(t.total_time_constant(), 1e-9);
  EXPECT_DOUBLE_EQ(t.delay_50(n), kLn2 * 1e-9);
  EXPECT_DOUBLE_EQ(t.slope(n), kSlopeFactor * 1e-9);
}

TEST(RcTree, UniformChainElmoreFormula) {
  // N equal sections of R and C: Elmore at the end = RC * N(N+1)/2.
  const int N = 5;
  const double R = 2e3;
  const double C = 50e-15;
  RcTree t;
  std::size_t cur = 0;
  for (int i = 0; i < N; ++i) cur = t.add_node(cur, R, C);
  EXPECT_NEAR(t.elmore(cur), R * C * N * (N + 1) / 2.0, 1e-20);
  // Lumped product would be (NR)(NC) = N^2 RC: the chain is ~2x faster.
  EXPECT_NEAR((R * N) * (C * N) / t.elmore(cur),
              2.0 * N / (N + 1.0), 1e-9);
}

TEST(RcTree, BranchCapsLoadTheTrunk) {
  // A side branch hanging off the middle of a chain adds its cap times
  // the shared (trunk) resistance to the far node's Elmore delay.
  RcTree t;
  const std::size_t a = t.add_node(0, 1e3, 10e-15);
  const std::size_t b = t.add_node(a, 1e3, 10e-15);
  const Seconds before = t.elmore(b);
  const std::size_t side = t.add_node(a, 5e3, 20e-15);
  (void)side;
  const Seconds after = t.elmore(b);
  // The branch cap (20 fF) sees only the shared 1 kOhm.
  EXPECT_NEAR(after - before, 1e3 * 20e-15, 1e-21);
}

TEST(RcTree, CommonResistanceIsLcaPath) {
  RcTree t;
  const std::size_t a = t.add_node(0, 1e3, 1e-15);
  const std::size_t b = t.add_node(a, 2e3, 1e-15);
  const std::size_t c = t.add_node(a, 4e3, 1e-15);
  EXPECT_DOUBLE_EQ(t.common_resistance(b, c), 1e3);     // share root->a
  EXPECT_DOUBLE_EQ(t.common_resistance(b, b), 3e3);     // full path
  EXPECT_DOUBLE_EQ(t.common_resistance(b, 0), 0.0);     // root
  EXPECT_DOUBLE_EQ(t.path_resistance(c), 5e3);
}

TEST(RcTree, SubtreeAndTotalCap) {
  RcTree t(2e-15);
  const std::size_t a = t.add_node(0, 1e3, 3e-15);
  const std::size_t b = t.add_node(a, 1e3, 5e-15);
  t.add_cap(b, 1e-15);
  EXPECT_DOUBLE_EQ(t.subtree_cap(a), 9e-15);
  EXPECT_DOUBLE_EQ(t.subtree_cap(b), 6e-15);
  EXPECT_DOUBLE_EQ(t.total_cap(), 11e-15);
}

TEST(RcTree, RphBoundsBracketTheExponentialEstimate) {
  RcTree t;
  std::size_t cur = 0;
  for (int i = 0; i < 4; ++i) cur = t.add_node(cur, 1e3, 20e-15);
  const auto b = t.rph_bounds(cur, 0.5);
  EXPECT_LE(b.lower, t.delay_50(cur));
  EXPECT_GE(b.upper, t.delay_50(cur));
  EXPECT_GE(b.lower, 0.0);
}

TEST(RcTree, RphBoundsTightenTowardLowThreshold) {
  RcTree t;
  const std::size_t n = t.add_node(0, 1e3, 1e-12);
  const auto b20 = t.rph_bounds(n, 0.2);
  const auto b80 = t.rph_bounds(n, 0.8);
  EXPECT_LT(b20.upper, b80.upper);
  EXPECT_LE(b20.lower, b80.lower);
  EXPECT_THROW(t.rph_bounds(n, 0.0), ContractViolation);
  EXPECT_THROW(t.rph_bounds(n, 1.0), ContractViolation);
}

TEST(RcTree, SingleSectionBoundsAreClassic) {
  // For a single RC section, T_D == T_P == RC:
  // lower(v) = v * RC, upper(v) = RC / (1 - v).
  RcTree t;
  const std::size_t n = t.add_node(0, 1e3, 1e-12);
  const auto b = t.rph_bounds(n, 0.5);
  EXPECT_NEAR(b.lower, 0.5e-9, 1e-15);
  EXPECT_NEAR(b.upper, 2e-9, 1e-15);
}

TEST(RcTree, InputValidation) {
  RcTree t;
  EXPECT_THROW(t.add_node(5, 1e3, 0.0), ContractViolation);   // bad parent
  EXPECT_THROW(t.add_node(0, 0.0, 0.0), ContractViolation);   // zero R
  EXPECT_THROW(t.add_node(0, 1e3, -1.0), ContractViolation);  // negative C
  EXPECT_THROW(t.elmore(3), ContractViolation);
}

// --- ResistiveNetwork ------------------------------------------------------

TEST(ResistiveNetwork, SeriesAndParallelHelpers) {
  EXPECT_DOUBLE_EQ(series(1e3, 2e3), 3e3);
  EXPECT_DOUBLE_EQ(parallel(2e3, 2e3), 1e3);
}

TEST(ResistiveNetwork, SeriesChain) {
  ResistiveNetwork n;
  const auto a = n.add_terminal();
  const auto b = n.add_terminal();
  const auto c = n.add_terminal();
  n.add_resistor(a, b, 1e3);
  n.add_resistor(b, c, 2e3);
  EXPECT_NEAR(n.effective_resistance(a, c), 3e3, 1e-6);
}

TEST(ResistiveNetwork, ParallelPair) {
  ResistiveNetwork n;
  const auto a = n.add_terminal();
  const auto b = n.add_terminal();
  n.add_resistor(a, b, 2e3);
  n.add_resistor(a, b, 2e3);
  EXPECT_NEAR(n.effective_resistance(a, b), 1e3, 1e-6);
}

TEST(ResistiveNetwork, WheatstoneBridge) {
  // Balanced bridge: the cross resistor carries no current, so
  // R_eff = (1k + 1k) || (1k + 1k) = 1k regardless of the bridge arm.
  ResistiveNetwork n;
  const auto a = n.add_terminal();
  const auto t1 = n.add_terminal();
  const auto t2 = n.add_terminal();
  const auto b = n.add_terminal();
  n.add_resistor(a, t1, 1e3);
  n.add_resistor(a, t2, 1e3);
  n.add_resistor(t1, b, 1e3);
  n.add_resistor(t2, b, 1e3);
  n.add_resistor(t1, t2, 7e3);  // arbitrary bridge arm
  EXPECT_NEAR(n.effective_resistance(a, b), 1e3, 1e-6);
}

TEST(ResistiveNetwork, DisconnectedThrows) {
  ResistiveNetwork n;
  const auto a = n.add_terminal();
  const auto b = n.add_terminal();
  const auto c = n.add_terminal();
  n.add_resistor(a, b, 1e3);
  EXPECT_THROW(n.effective_resistance(a, c), NumericalError);
}

TEST(ResistiveNetwork, Validation) {
  ResistiveNetwork n;
  const auto a = n.add_terminal();
  EXPECT_THROW(n.add_resistor(a, a, 1e3), ContractViolation);
  EXPECT_THROW(n.add_resistor(a, 9, 1e3), ContractViolation);
  EXPECT_THROW(n.effective_resistance(a, a), ContractViolation);
}

// Property: effective resistance of a random ladder equals the explicit
// series/parallel fold.
class LadderProperty : public ::testing::TestWithParam<int> {};

TEST_P(LadderProperty, MatchesSeriesParallelFold) {
  const int rungs = GetParam();
  ResistiveNetwork n;
  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  const auto a = n.add_terminal();
  const auto b = n.add_terminal();
  // Build a ladder a - r1 - x1 - r2 - x2 ... - b with rung resistors
  // from each xi to b; fold the same structure with series()/parallel().
  double folded = 0.0;
  std::size_t cur = a;
  double series_acc = 0.0;
  for (int i = 0; i < rungs; ++i) {
    const double r_series = 1e3 * (i + 1);
    const double r_rung = 2e3 * (i + 1);
    const auto x = n.add_terminal();
    n.add_resistor(cur, x, r_series);
    n.add_resistor(x, b, r_rung);
    cur = x;
    (void)series_acc;
    (void)folded;
  }
  // Fold from the far end: R = r_series_k + (r_rung_k || R_next).
  double r_eff = 0.0;
  bool first = true;
  for (int i = rungs - 1; i >= 0; --i) {
    const double r_series = 1e3 * (i + 1);
    const double r_rung = 2e3 * (i + 1);
    r_eff = first ? series(r_series, r_rung)
                  : series(r_series, parallel(r_rung, r_eff));
    first = false;
  }
  EXPECT_NEAR(n.effective_resistance(a, b) / r_eff, 1.0, 1e-6);
  (void)left;
  (void)right;
}

INSTANTIATE_TEST_SUITE_P(Rungs, LadderProperty, ::testing::Range(1, 8));

}  // namespace
}  // namespace sldm
