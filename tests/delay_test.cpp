// Tests for the delay models: stage invariants, the three models'
// relationships, and the slope-table machinery.
#include <gtest/gtest.h>

#include <sstream>

#include "delay/lumped.h"
#include "delay/model.h"
#include "delay/rctree.h"
#include "delay/slope.h"
#include "delay/slope_table.h"
#include "rc/rc_tree.h"
#include "util/contracts.h"
#include "util/error.h"

namespace sldm {
namespace {

Stage single_stage(Ohms r = 10e3, Farads c = 100e-15) {
  Stage s;
  s.output_dir = Transition::kFall;
  s.elements.push_back(
      {.type = TransistorType::kNEnhancement, .resistance = r, .cap = c});
  return s;
}

Stage chain_stage(int n, Ohms r = 10e3, Farads c = 50e-15) {
  Stage s;
  s.output_dir = Transition::kFall;
  for (int i = 0; i < n; ++i) {
    s.elements.push_back(
        {.type = TransistorType::kNEnhancement, .resistance = r, .cap = c});
  }
  return s;
}

// --- Stage ---------------------------------------------------------------

TEST(Stage, AccessorsAndTotals) {
  const Stage s = chain_stage(3, 1e3, 10e-15);
  EXPECT_DOUBLE_EQ(s.total_resistance(), 3e3);
  EXPECT_DOUBLE_EQ(s.total_cap(), 30e-15);
  EXPECT_DOUBLE_EQ(s.destination_cap(), 10e-15);
}

TEST(Stage, ValidateRejectsBadStages) {
  Stage empty;
  EXPECT_THROW(validate(empty), ContractViolation);

  Stage bad_trigger = single_stage();
  bad_trigger.trigger_index = 5;
  EXPECT_THROW(validate(bad_trigger), ContractViolation);

  Stage bad_r = single_stage(0.0);
  EXPECT_THROW(validate(bad_r), ContractViolation);

  Stage no_cap = single_stage(1e3, 0.0);
  EXPECT_THROW(validate(no_cap), ContractViolation);

  Stage bad_slope = single_stage();
  bad_slope.input_slope = -1.0;
  EXPECT_THROW(validate(bad_slope), ContractViolation);
}

TEST(Stage, ToRcTreeMatchesHandBuiltTree) {
  const Stage s = chain_stage(4, 2e3, 25e-15);
  const RcTree tree = to_rc_tree(s);
  EXPECT_EQ(tree.node_count(), 5u);
  EXPECT_DOUBLE_EQ(stage_elmore(s), tree.elmore(4));
  // Uniform chain formula: RC * n(n+1)/2.
  EXPECT_NEAR(stage_elmore(s), 2e3 * 25e-15 * 4 * 5 / 2.0, 1e-21);
}

// --- Lumped vs RC-tree ----------------------------------------------------

TEST(Models, AgreeOnSingleSection) {
  const Stage s = single_stage();
  const LumpedRcModel lumped;
  const RcTreeModel rctree;
  EXPECT_NEAR(lumped.estimate(s).delay, rctree.estimate(s).delay, 1e-18);
  EXPECT_NEAR(lumped.estimate(s).output_slope,
              rctree.estimate(s).output_slope, 1e-18);
}

TEST(Models, LumpedPessimismGrowsWithChainLength) {
  const LumpedRcModel lumped;
  const RcTreeModel rctree;
  double prev_ratio = 1.0;
  for (int n = 1; n <= 8; ++n) {
    const Stage s = chain_stage(n);
    const double ratio =
        lumped.estimate(s).delay / rctree.estimate(s).delay;
    EXPECT_GE(ratio, prev_ratio - 1e-12) << "n = " << n;
    prev_ratio = ratio;
    // Exact for uniform chains: n^2 / (n(n+1)/2) = 2n/(n+1).
    EXPECT_NEAR(ratio, 2.0 * n / (n + 1.0), 1e-9);
  }
  // The paper's headline: ~2x pessimism on long chains.
  EXPECT_GT(prev_ratio, 1.7);
}

TEST(Models, DelayScalesLinearlyWithRAndC) {
  const RcTreeModel m;
  const Stage s1 = single_stage(10e3, 100e-15);
  const Stage s2 = single_stage(20e3, 100e-15);
  const Stage s3 = single_stage(10e3, 200e-15);
  EXPECT_NEAR(m.estimate(s2).delay, 2.0 * m.estimate(s1).delay, 1e-18);
  EXPECT_NEAR(m.estimate(s3).delay, 2.0 * m.estimate(s1).delay, 1e-18);
}

TEST(Models, NamesAreStable) {
  EXPECT_EQ(LumpedRcModel().name(), "lumped-rc");
  EXPECT_EQ(RcTreeModel().name(), "rc-tree");
  EXPECT_EQ(SlopeModel(SlopeTables::unit()).name(), "slope");
}

// --- Slope tables ----------------------------------------------------------

SlopeTables ramp_tables() {
  // delay multiplier 1 + rho/2, slope multiplier 1 + rho, on [0.01, 100].
  SlopeTables t;
  const std::vector<double> xs = {0.01, 100.0};
  for (TransistorType type :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion,
        TransistorType::kPEnhancement}) {
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      t.set(type, dir,
            SlopeEntry{PiecewiseLinear(xs, {1.005, 51.0}),
                       PiecewiseLinear(xs, {1.01, 101.0})});
    }
  }
  return t;
}

TEST(SlopeTables, UnitHasEveryEntry) {
  const SlopeTables t = SlopeTables::unit();
  for (TransistorType type :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion,
        TransistorType::kPEnhancement}) {
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      ASSERT_TRUE(t.has(type, dir));
      EXPECT_DOUBLE_EQ(t.entry(type, dir).delay_mult(1.0), 1.0);
    }
  }
}

TEST(SlopeTables, MissingEntryIsAContractViolation) {
  const SlopeTables empty;
  EXPECT_FALSE(empty.has(TransistorType::kNEnhancement, Transition::kRise));
  EXPECT_THROW(empty.entry(TransistorType::kNEnhancement, Transition::kRise),
               ContractViolation);
}

TEST(SlopeTables, RoundTripThroughText) {
  const SlopeTables a = ramp_tables();
  std::stringstream ss;
  a.write(ss);
  const SlopeTables b = SlopeTables::read(ss, "<roundtrip>");
  for (TransistorType type :
       {TransistorType::kNEnhancement, TransistorType::kNDepletion,
        TransistorType::kPEnhancement}) {
    for (Transition dir : {Transition::kRise, Transition::kFall}) {
      ASSERT_TRUE(b.has(type, dir));
      for (double rho : {0.01, 0.5, 3.0, 100.0}) {
        EXPECT_NEAR(b.entry(type, dir).delay_mult(rho),
                    a.entry(type, dir).delay_mult(rho), 1e-9);
        EXPECT_NEAR(b.entry(type, dir).slope_mult(rho),
                    a.entry(type, dir).slope_mult(rho), 1e-9);
      }
    }
  }
}

TEST(SlopeTables, ReadRejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return SlopeTables::read(in, "<test>");
  };
  EXPECT_THROW(parse("entry e sideways\n"), ParseError);
  EXPECT_THROW(parse("entry q rise\n"), ParseError);
  EXPECT_THROW(parse("delay 1:1\n"), ParseError);  // outside entry
  EXPECT_THROW(parse("entry e rise\ndelay 1:1\nentry e fall\n"), ParseError)
      << "incomplete first entry";
  EXPECT_THROW(parse("entry e rise\ndelay bogus\nslope 1:1\n"), ParseError);
  EXPECT_THROW(parse("entry e rise\ndelay 2:1 1:1\nslope 1:1\n"), ParseError)
      << "non-increasing abscissae";
  EXPECT_THROW(parse("zzz\n"), ParseError);
}

TEST(SlopeTables, OutOfRangeClampsToBoundaryCellOnBothAxes) {
  // Policy (slope_table.h): lookups outside the calibrated rho range
  // clamp to the boundary cell -- no extrapolation.  Check both the
  // under-range and over-range side, on both the delay and the slope
  // table.
  const SlopeTables t = ramp_tables();
  const SlopeEntry& e =
      t.entry(TransistorType::kNEnhancement, Transition::kRise);
  // Calibrated domain is [0.01, 100]; values at the boundary cells:
  const double d_lo = e.delay_mult(0.01);
  const double d_hi = e.delay_mult(100.0);
  const double s_lo = e.slope_mult(0.01);
  const double s_hi = e.slope_mult(100.0);
  EXPECT_DOUBLE_EQ(e.delay_mult(1e-6), d_lo);
  EXPECT_DOUBLE_EQ(e.delay_mult(0.0), d_lo);
  EXPECT_DOUBLE_EQ(e.delay_mult(1e6), d_hi);
  EXPECT_DOUBLE_EQ(e.slope_mult(1e-9), s_lo);
  EXPECT_DOUBLE_EQ(e.slope_mult(1e9), s_hi);
  // The clamped values are the real boundary multipliers, not some
  // sentinel: inside the domain the ramp is strictly increasing.
  EXPECT_LT(d_lo, d_hi);
  EXPECT_LT(s_lo, s_hi);
}

TEST(SlopeTables, ReadRejectsNonFiniteAndNonPositiveMultipliers) {
  // Because out-of-range lookups clamp to boundary cells, one bad cell
  // would silently poison every out-of-range query; the reader must
  // reject such tables with a line-numbered ParseError.
  auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return SlopeTables::read(in, "<test>");
  };
  const std::string slope_ok = "slope 1:1 2:1\n";
  for (const char* bad : {"nan", "inf", "-inf", "-1", "0"}) {
    const std::string text =
        std::string("entry e rise\ndelay 1:1 2:") + bad + "\n" + slope_ok;
    EXPECT_THROW(parse(text), ParseError) << "delay cell " << bad;
    const std::string text2 = std::string("entry e rise\ndelay 1:1 2:1\n") +
                              "slope 1:" + bad + " 2:1\n";
    EXPECT_THROW(parse(text2), ParseError) << "slope cell " << bad;
  }
  // Non-finite abscissae are equally poisonous.
  EXPECT_THROW(parse("entry e rise\ndelay nan:1 2:1\nslope 1:1\n"),
               ParseError);
  // Line numbers point at the offending record.
  try {
    parse("entry e rise\ndelay 1:1 2:nan\nslope 1:1\n");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos)
        << e.what();
  }
}

TEST(SlopeTables, SetRejectsNonPositiveMultiplier) {
  SlopeTables t;
  const std::vector<double> xs = {0.01, 100.0};
  EXPECT_THROW(t.set(TransistorType::kNEnhancement, Transition::kRise,
                     SlopeEntry{PiecewiseLinear(xs, {1.0, 0.0}),
                                PiecewiseLinear(xs, {1.0, 1.0})}),
               ContractViolation);
  EXPECT_THROW(t.set(TransistorType::kNEnhancement, Transition::kRise,
                     SlopeEntry{PiecewiseLinear(xs, {1.0, 1.0}),
                                PiecewiseLinear(xs, {-2.0, 1.0})}),
               ContractViolation);
}

// --- Slope model ------------------------------------------------------------

TEST(SlopeModel, UnitTablesDegenerateToRcTree) {
  const SlopeModel slope(SlopeTables::unit());
  const RcTreeModel rctree;
  for (int n = 1; n <= 5; ++n) {
    Stage s = chain_stage(n);
    s.input_slope = 3e-9;  // irrelevant under unit tables
    EXPECT_NEAR(slope.estimate(s).delay, rctree.estimate(s).delay, 1e-18);
  }
}

TEST(SlopeModel, SlowerInputGivesLongerDelay) {
  const SlopeModel slope(ramp_tables());
  Stage fast = single_stage();
  fast.input_slope = 0.0;
  Stage slow = single_stage();
  slow.input_slope = 10.0 * stage_elmore(slow);
  EXPECT_GT(slope.estimate(slow).delay, slope.estimate(fast).delay);
  EXPECT_GT(slope.estimate(slow).output_slope,
            slope.estimate(fast).output_slope);
}

TEST(SlopeModel, MultiplierAppliedToElmoreConstant) {
  const SlopeModel slope(ramp_tables());
  Stage s = single_stage(10e3, 100e-15);
  const Seconds td = stage_elmore(s);
  s.input_slope = 2.0 * td;  // rho = 2 -> delay mult = 2, slope mult = 3
  const DelayEstimate est = slope.estimate(s);
  EXPECT_NEAR(est.delay, kLn2 * 2.0 * td, 1e-15);
  EXPECT_NEAR(est.output_slope, kSlopeFactor * 3.0 * td, 1e-15);
}

TEST(SlopeModel, UsesTriggerTypeForLookup) {
  // Give the depletion entry a distinctive multiplier and check that a
  // stage triggered at a depletion element picks it up.
  SlopeTables t = SlopeTables::unit();
  t.set(TransistorType::kNDepletion, Transition::kRise,
        SlopeEntry{PiecewiseLinear({0.01, 100.0}, {5.0, 5.0}),
                   PiecewiseLinear({0.01, 100.0}, {5.0, 5.0})});
  const SlopeModel slope(std::move(t));

  Stage s;
  s.output_dir = Transition::kRise;
  s.elements.push_back({.type = TransistorType::kNDepletion,
                        .resistance = 40e3,
                        .cap = 50e-15});
  const Seconds td = stage_elmore(s);
  EXPECT_NEAR(slope.estimate(s).delay, kLn2 * 5.0 * td, 1e-15);
}

TEST(SlopeModel, MissingEntryRejected) {
  const SlopeModel slope{SlopeTables{}};
  EXPECT_THROW(slope.estimate(single_stage()), ContractViolation);
}

TEST(SlopeModel, SlopeRatioDefinition) {
  Stage s = single_stage(10e3, 100e-15);
  s.input_slope = 2e-9;
  const Seconds td = stage_elmore(s);
  EXPECT_NEAR(SlopeModel::slope_ratio(s, td), 2e-9 / td, 1e-12);
  EXPECT_THROW(SlopeModel::slope_ratio(s, 0.0), ContractViolation);
}

}  // namespace
}  // namespace sldm
