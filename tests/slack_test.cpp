// Tests for slack analysis.
#include <gtest/gtest.h>

#include "delay/rctree.h"
#include "gen/generators.h"
#include "tech/tech.h"
#include "timing/slack.h"
#include "util/contracts.h"

namespace sldm {
namespace {

struct Fixture {
  Tech tech = nmos4();
  RcTreeModel model;
  GeneratedCircuit g = inverter_chain(Style::kNmos, 4, 2);
  TimingAnalyzer analyzer{g.netlist, tech, model};

  Fixture() {
    analyzer.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
    analyzer.run();
  }
};

TEST(Slack, GenerousBudgetHasNoViolations) {
  Fixture f;
  const SlackReport r = compute_slack(f.g.netlist, f.analyzer, 1e-6);
  ASSERT_FALSE(r.entries.empty());
  EXPECT_TRUE(r.violations().empty());
  ASSERT_TRUE(r.worst_slack().has_value());
  EXPECT_GT(*r.worst_slack(), 0.0);
}

TEST(Slack, TightBudgetFlagsViolations) {
  Fixture f;
  const SlackReport r = compute_slack(f.g.netlist, f.analyzer, 1e-12);
  ASSERT_FALSE(r.entries.empty());
  EXPECT_FALSE(r.violations().empty());
  EXPECT_LT(*r.worst_slack(), 0.0);
}

TEST(Slack, EntriesSortedMostCriticalFirst) {
  Fixture f;
  const SlackReport r = compute_slack(f.g.netlist, f.analyzer, 10e-9);
  for (std::size_t i = 1; i < r.entries.size(); ++i) {
    EXPECT_LE(r.entries[i - 1].slack, r.entries[i].slack);
  }
}

TEST(Slack, SlackArithmetic) {
  Fixture f;
  const Seconds budget = 10e-9;
  const SlackReport r = compute_slack(f.g.netlist, f.analyzer, budget);
  for (const SlackEntry& e : r.entries) {
    EXPECT_DOUBLE_EQ(e.slack, budget - e.arrival);
    EXPECT_DOUBLE_EQ(e.required, budget);
    EXPECT_TRUE(f.g.netlist.node(e.node).is_output);
  }
}

TEST(Slack, OnlyArrivedTransitionsListed) {
  // With a single rising input seed, the final stage output of a
  // 4-stage chain only ever rises, so exactly one entry exists.
  Fixture f;
  const SlackReport r = compute_slack(f.g.netlist, f.analyzer, 10e-9);
  EXPECT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].dir, Transition::kRise);
}

TEST(Slack, ReportMentionsViolationAndPath) {
  Fixture f;
  const SlackReport r = compute_slack(f.g.netlist, f.analyzer, 1e-12);
  const std::string text = format_slack(f.g.netlist, f.analyzer, r);
  EXPECT_NE(text.find("VIOLATION"), std::string::npos);
  EXPECT_NE(text.find("worst violating path"), std::string::npos);
  EXPECT_NE(text.find("<- input"), std::string::npos);
}

TEST(Slack, RequiredTimeValidated) {
  Fixture f;
  EXPECT_THROW(compute_slack(f.g.netlist, f.analyzer, 0.0),
               ContractViolation);
  EXPECT_THROW(compute_slack(f.g.netlist, f.analyzer, -1e-9),
               ContractViolation);
}

TEST(Slack, EmptyReportWhenNoOutputsArrived) {
  const Tech tech = nmos4();
  const RcTreeModel model;
  const GeneratedCircuit g = inverter_chain(Style::kNmos, 2, 1);
  TimingAnalyzer an(g.netlist, tech, model);
  // No input events at all: nothing arrives anywhere.
  an.run();
  const SlackReport r = compute_slack(g.netlist, an, 10e-9);
  EXPECT_TRUE(r.entries.empty());
  EXPECT_FALSE(r.worst_slack().has_value());
}

}  // namespace
}  // namespace sldm
