// Unit tests for src/netlist: the switch-level representation, role
// marking, connectivity queries, and the structural checker.
#include <gtest/gtest.h>

#include "netlist/checks.h"
#include "netlist/netlist.h"
#include "util/contracts.h"
#include "util/units.h"

namespace sldm {
namespace {

using namespace units;

TEST(Netlist, AddNodeIsIdempotentByName) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  const NodeId a2 = nl.add_node("a");
  EXPECT_EQ(a, a2);
  EXPECT_EQ(nl.node_count(), 1u);
  EXPECT_EQ(nl.find_node("a"), a);
  EXPECT_FALSE(nl.find_node("missing").has_value());
}

TEST(Netlist, EmptyNameRejected) {
  Netlist nl;
  EXPECT_THROW(nl.add_node(""), ContractViolation);
}

TEST(Netlist, TransistorConnectivityIndexed) {
  Netlist nl;
  const NodeId g = nl.add_node("g");
  const NodeId s = nl.add_node("s");
  const NodeId d = nl.add_node("d");
  const DeviceId t = nl.add_transistor(TransistorType::kNEnhancement, g, s, d,
                                       8 * um, 4 * um);
  ASSERT_EQ(nl.gated_by(g).size(), 1u);
  EXPECT_EQ(nl.gated_by(g)[0], t);
  EXPECT_TRUE(nl.gated_by(s).empty());
  EXPECT_EQ(nl.channels_at(s).size(), 1u);
  EXPECT_EQ(nl.channels_at(d).size(), 1u);
  EXPECT_TRUE(nl.channels_at(g).empty());
}

TEST(Netlist, TransistorPreconditions) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  // source == drain
  EXPECT_THROW(nl.add_transistor(TransistorType::kNEnhancement, a, b, b,
                                 8 * um, 4 * um),
               ContractViolation);
  // non-positive dimensions
  EXPECT_THROW(nl.add_transistor(TransistorType::kNEnhancement, a, a, b, 0.0,
                                 4 * um),
               ContractViolation);
  EXPECT_THROW(nl.add_transistor(TransistorType::kNEnhancement, a, a, b,
                                 8 * um, -1.0),
               ContractViolation);
  // invalid node id
  EXPECT_THROW(nl.add_transistor(TransistorType::kNEnhancement,
                                 NodeId::invalid(), a, b, 8 * um, 4 * um),
               ContractViolation);
}

TEST(Netlist, OtherEndAndConnects) {
  Netlist nl;
  const NodeId g = nl.add_node("g");
  const NodeId s = nl.add_node("s");
  const NodeId d = nl.add_node("d");
  const DeviceId t = nl.add_transistor(TransistorType::kPEnhancement, g, s, d,
                                       6 * um, 3 * um);
  const Transistor& tr = nl.device(t);
  EXPECT_EQ(tr.other_end(s), d);
  EXPECT_EQ(tr.other_end(d), s);
  EXPECT_TRUE(tr.connects(s));
  EXPECT_FALSE(tr.connects(g));
  EXPECT_THROW(tr.other_end(g), ContractViolation);
  EXPECT_DOUBLE_EQ(tr.aspect(), 2.0);
}

TEST(Netlist, RoleMarking) {
  Netlist nl;
  const NodeId v = nl.mark_power("vdd");
  const NodeId g = nl.mark_ground("gnd");
  const NodeId in = nl.mark_input("in");
  const NodeId out = nl.mark_output("out");
  const NodeId pc = nl.mark_precharged("bus");
  EXPECT_TRUE(nl.node(v).is_power);
  EXPECT_TRUE(nl.node(g).is_ground);
  EXPECT_TRUE(nl.node(in).is_input);
  EXPECT_TRUE(nl.node(out).is_output);
  EXPECT_TRUE(nl.node(pc).is_precharged);
  EXPECT_TRUE(nl.is_rail(v));
  EXPECT_TRUE(nl.is_rail(g));
  EXPECT_FALSE(nl.is_rail(in));
  EXPECT_EQ(nl.power_node(), v);
  EXPECT_EQ(nl.ground_node(), g);
}

TEST(Netlist, AmbiguousRailsReportedAsNullopt) {
  Netlist nl;
  nl.mark_power("vdd1");
  nl.mark_power("vdd2");
  EXPECT_FALSE(nl.power_node().has_value());
}

TEST(Netlist, CapAccumulates) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  nl.add_cap(a, 5 * fF);
  nl.add_cap(a, 3 * fF);
  EXPECT_DOUBLE_EQ(nl.node(a).cap, 8 * fF);
  EXPECT_THROW(nl.add_cap(a, -1 * fF), ContractViolation);
}

TEST(Netlist, IdsAreDense) {
  Netlist nl;
  nl.add_node("a");
  nl.add_node("b");
  const auto ids = nl.node_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0].index(), 0u);
  EXPECT_EQ(ids[1].index(), 1u);
}

TEST(Netlist, MutatorsValidateAndApply) {
  Netlist nl;
  const NodeId g = nl.add_node("g");
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  const DeviceId d =
      nl.add_transistor(TransistorType::kNEnhancement, g, a, b, 8 * um,
                        4 * um);
  nl.set_width(d, 12 * um);
  nl.set_length(d, 6 * um);
  EXPECT_DOUBLE_EQ(nl.device(d).width, 12 * um);
  EXPECT_DOUBLE_EQ(nl.device(d).length, 6 * um);
  EXPECT_THROW(nl.set_width(d, 0.0), ContractViolation);
  EXPECT_THROW(nl.set_length(d, -1 * um), ContractViolation);
  nl.set_capacitance(a, 7 * fF);
  EXPECT_DOUBLE_EQ(nl.node(a).cap, 7 * fF);
  nl.set_capacitance(a, 2 * fF);  // replaces, does not accumulate
  EXPECT_DOUBLE_EQ(nl.node(a).cap, 2 * fF);
  EXPECT_THROW(nl.set_capacitance(a, -1 * fF), ContractViolation);
  nl.set_fixed(a, true);
  EXPECT_EQ(nl.node(a).fixed_value(), std::optional<bool>(true));
  nl.set_fixed(a, std::nullopt);
  EXPECT_EQ(nl.node(a).fixed_value(), std::nullopt);
}

TEST(Netlist, ChangeLogJournalsEveryMutation) {
  Netlist nl;
  EXPECT_EQ(nl.revision(), 0u);
  const NodeId g = nl.add_node("g");
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  EXPECT_EQ(nl.revision(), 3u);
  nl.add_node("a");  // existing name: no new node, no log entry
  EXPECT_EQ(nl.revision(), 3u);

  const DeviceId d =
      nl.add_transistor(TransistorType::kNEnhancement, g, a, b, 8 * um,
                        4 * um);
  nl.set_width(d, 12 * um);
  nl.set_flow(d, Flow::kSourceToDrain);
  nl.set_capacitance(a, 5 * fF);
  nl.add_cap(a, 1 * fF);
  nl.set_fixed(b, false);
  nl.mark_output("a");
  nl.mark_input("g");
  const ChangeLog& log = nl.changes();
  ASSERT_EQ(log.revision(), 11u);
  EXPECT_EQ(log.entry(0).kind, ChangeKind::kNodeAdded);
  EXPECT_EQ(log.entry(0).node(), g);
  EXPECT_EQ(log.entry(3).kind, ChangeKind::kDeviceAdded);
  EXPECT_EQ(log.entry(3).device(), d);
  EXPECT_EQ(log.entry(4).kind, ChangeKind::kDeviceSized);
  EXPECT_EQ(log.entry(5).kind, ChangeKind::kDeviceFlow);
  EXPECT_EQ(log.entry(6).kind, ChangeKind::kNodeCap);
  EXPECT_EQ(log.entry(7).kind, ChangeKind::kNodeCap);
  EXPECT_EQ(log.entry(8).kind, ChangeKind::kNodeFixed);
  EXPECT_EQ(log.entry(8).node(), b);
  EXPECT_EQ(log.entry(9).kind, ChangeKind::kNodeRoleOutput);
  EXPECT_EQ(log.entry(10).kind, ChangeKind::kNodeRole);
}

TEST(TypeNames, LettersAndStrings) {
  EXPECT_EQ(to_letter(TransistorType::kNEnhancement), "e");
  EXPECT_EQ(to_letter(TransistorType::kNDepletion), "d");
  EXPECT_EQ(to_letter(TransistorType::kPEnhancement), "p");
  EXPECT_EQ(to_string(Transition::kRise), "rise");
  EXPECT_EQ(to_string(Transition::kFall), "fall");
  EXPECT_EQ(opposite(Transition::kRise), Transition::kFall);
  EXPECT_EQ(opposite(Transition::kFall), Transition::kRise);
}

// --- checks --------------------------------------------------------------

Netlist inverter_netlist() {
  Netlist nl;
  const NodeId vdd = nl.mark_power("vdd");
  const NodeId gnd = nl.mark_ground("gnd");
  const NodeId in = nl.mark_input("in");
  const NodeId out = nl.mark_output("out");
  nl.add_transistor(TransistorType::kNEnhancement, in, gnd, out, 8 * um,
                    4 * um);
  nl.add_transistor(TransistorType::kNDepletion, out, out, vdd, 4 * um,
                    8 * um);
  return nl;
}

TEST(Checks, CleanInverterPasses) {
  const Netlist nl = inverter_netlist();
  const auto ds = check(nl);
  EXPECT_TRUE(all_ok(ds)) << to_string(nl, ds);
  EXPECT_TRUE(ds.empty()) << to_string(nl, ds);
}

TEST(Checks, MissingRailsIsError) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node("b");
  const NodeId g = nl.add_node("g");
  nl.add_transistor(TransistorType::kNEnhancement, g, a, b, 8 * um, 4 * um);
  const auto ds = check(nl);
  EXPECT_FALSE(all_ok(ds));
}

TEST(Checks, PowerAndGroundConflictIsError) {
  Netlist nl;
  nl.mark_power("x");
  nl.mark_ground("x");
  EXPECT_FALSE(all_ok(check(nl)));
}

TEST(Checks, PermanentlyOffDeviceIsError) {
  Netlist nl = inverter_netlist();
  const NodeId gnd = *nl.ground_node();
  const NodeId out = *nl.find_node("out");
  const NodeId x = nl.add_node("x");
  // n-enh gated by ground can never conduct.
  nl.add_transistor(TransistorType::kNEnhancement, gnd, out, x, 8 * um,
                    4 * um);
  EXPECT_FALSE(all_ok(check(nl)));
}

TEST(Checks, PseudoNmosLoadIsLegitimate) {
  Netlist nl;
  const NodeId vdd = nl.mark_power("vdd");
  const NodeId gnd = nl.mark_ground("gnd");
  const NodeId in = nl.mark_input("in");
  const NodeId out = nl.mark_output("out");
  nl.add_transistor(TransistorType::kNEnhancement, in, gnd, out, 8 * um,
                    4 * um);
  // p load gated by ground: permanently on, allowed.
  nl.add_transistor(TransistorType::kPEnhancement, gnd, out, vdd, 6 * um,
                    3 * um);
  EXPECT_TRUE(all_ok(check(nl)));
}

TEST(Checks, FloatingGateIsWarning) {
  Netlist nl = inverter_netlist();
  const NodeId ghost = nl.add_node("ghost");
  const NodeId gnd = *nl.ground_node();
  const NodeId out = *nl.find_node("out");
  nl.add_transistor(TransistorType::kNEnhancement, ghost, gnd, out, 8 * um,
                    4 * um);
  const auto ds = check(nl);
  EXPECT_TRUE(all_ok(ds));  // warning, not error
  bool found = false;
  for (const auto& d : ds) {
    if (d.message.find("floating gate") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << to_string(nl, ds);
}

TEST(Checks, UnreachableChannelIslandIsWarning) {
  Netlist nl = inverter_netlist();
  const NodeId a = nl.add_node("islanda");
  const NodeId b = nl.add_node("islandb");
  const NodeId in = *nl.find_node("in");
  nl.add_transistor(TransistorType::kNEnhancement, in, a, b, 8 * um, 4 * um);
  const auto ds = check(nl);
  EXPECT_TRUE(all_ok(ds));
  bool found = false;
  for (const auto& d : ds) {
    if (d.message.find("no channel path") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << to_string(nl, ds);
}

TEST(Checks, DiagnosticRenderingMentionsDevice) {
  Netlist nl = inverter_netlist();
  const NodeId gnd = *nl.ground_node();
  const NodeId out = *nl.find_node("out");
  const NodeId x = nl.add_node("x");
  nl.add_transistor(TransistorType::kNEnhancement, gnd, out, x, 8 * um,
                    4 * um);
  const auto ds = check(nl);
  const std::string text = to_string(nl, ds);
  EXPECT_NE(text.find("permanently off"), std::string::npos);
  EXPECT_NE(text.find("g=gnd"), std::string::npos);
}

}  // namespace
}  // namespace sldm
