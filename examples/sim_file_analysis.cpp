// Analyze a .sim netlist from disk: census, structural checks, charge
// sharing, timing with constraints, slack, and k-worst paths -- the
// "Crystal command-line" workflow end to end.
//
// usage: sim_file_analysis [file.sim] [constraints.ct] [nmos|cmos]
// With no arguments, a demo .sim + constraint file are written and
// analyzed so the example runs out of the box.
#include <fstream>
#include <iostream>

#include "compare/harness.h"
#include "delay/slope.h"
#include "netlist/checks.h"
#include "netlist/sim_io.h"
#include "netlist/stats.h"
#include "timing/charge_sharing.h"
#include "timing/constraints.h"
#include "timing/report.h"
#include "timing/slack.h"
#include "util/strings.h"

namespace {

const char* kDemoSim = R"(| units: 100  demo: nMOS buffer + pass gate + dynamic bit line
e in  gnd s1 4 8
d s1  s1  vdd 8 4
e s1  gnd s2 4 8
d s2  s2  vdd 8 4
e sel s2  s3 4 8
c s3 25
e s3  gnd out 4 8
d out out  vdd 8 4
e sel bit s3 4 8
c bit 40
@in in sel
@out out
@precharged bit
)";

const char* kDemoConstraints =
    "input in rise at 0 slope 1\n"
    "input sel rise at 0.5 slope 2\n"
    "require 25\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace sldm;
  try {
    std::string sim_path;
    std::string ct_path;
    if (argc > 1) {
      sim_path = argv[1];
    } else {
      sim_path = "demo_buffer.sim";
      std::ofstream(sim_path) << kDemoSim;
      ct_path = "demo_buffer.ct";
      std::ofstream(ct_path) << kDemoConstraints;
      std::cout << "(no input given; wrote and analyzing " << sim_path
                << " with " << ct_path << ")\n\n";
    }
    if (argc > 2) ct_path = argv[2];
    const std::string which = argc > 3 ? argv[3] : "nmos";

    const Netlist nl = read_sim_file(sim_path);
    std::cout << "== census ==\n" << to_string(compute_stats(nl)) << '\n';

    const auto diagnostics = check(nl);
    if (!diagnostics.empty()) {
      std::cout << "== structural diagnostics ==\n"
                << to_string(nl, diagnostics) << '\n';
    }
    if (!all_ok(diagnostics)) {
      std::cerr << "errors present; not analyzing\n";
      return 1;
    }

    const Style style = which == "cmos" ? Style::kCmos : Style::kNmos;
    const CompareContext& ctx = CompareContext::get(style);

    // Charge-sharing audit of every dynamic node.
    const auto sharing = analyze_all_charge_sharing(nl, ctx.tech());
    if (!sharing.empty()) {
      std::cout << "== charge sharing ==\n"
                << format_charge_sharing(nl, sharing, ctx.tech().v_switch())
                << '\n';
    }

    // Timing under the constraint file (or a default all-inputs event).
    SlopeModel model(ctx.calibration().tables);
    TimingAnalyzer an(nl, ctx.tech(), model);
    Constraints constraints;
    if (!ct_path.empty()) {
      constraints = read_constraints_file(ct_path);
      constraints.apply(nl, an);
    } else {
      an.add_all_input_events(1e-9);
    }
    an.run();

    std::cout << "== arrivals at outputs (slope model) ==\n"
              << format_output_arrivals(nl, an) << '\n';

    if (constraints.required) {
      const SlackReport slack = compute_slack(nl, an, *constraints.required);
      std::cout << "== slack ==\n" << format_slack(nl, an, slack) << '\n';
    }

    if (const auto worst = an.worst_arrival(true)) {
      const auto paths = an.k_worst_paths(worst->node, worst->dir, 3);
      std::cout << "== " << paths.size() << " worst path(s) to "
                << nl.node(worst->node).name << ' ' << to_string(worst->dir)
                << " ==\n";
      for (const auto& p : paths) {
        std::cout << format("arrival %.3f ns:\n", to_ns(p.arrival))
                  << format_path(nl, p.steps) << '\n';
      }
    } else {
      std::cout << "no output arrivals (are outputs marked with @out?)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
