// Calibration workflow: fit the effective resistances and slope tables
// for a technology against the built-in analog simulator and persist
// both as text files, the way a user would prepare a process for
// production timing runs.
//
// usage: calibrate_tech [nmos|cmos] [output_prefix]
#include <cstring>
#include <iostream>

#include "calib/calibrate.h"
#include "delay/slope_table.h"
#include "tech/tech.h"
#include "tech/tech_io.h"
#include "util/strings.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace sldm;
  const std::string which = argc > 1 ? argv[1] : "nmos";
  const std::string prefix = argc > 2 ? argv[2] : "calibrated";
  if (which != "nmos" && which != "cmos") {
    std::cerr << "usage: calibrate_tech [nmos|cmos] [output_prefix]\n";
    return 2;
  }
  try {
    const Style style = which == "nmos" ? Style::kNmos : Style::kCmos;
    const Tech base = style == Style::kNmos ? nmos4() : cmos3();
    std::cout << "calibrating " << base.name()
              << " against the analog simulator...\n";

    const CalibrationResult result = calibrate(base, style);

    TextTable table({"device", "transition", "R/sq (kOhm)",
                     "table points"});
    for (const CalibrationCurve& c : result.curves) {
      table.add_row(
          {to_string(c.type), to_string(c.dir),
           format("%.2f", to_kohm(result.tech.resistance_sq(c.type, c.dir))),
           std::to_string(c.points.size())});
    }
    std::cout << table.to_string() << '\n';

    const std::string tech_path = prefix + "_" + which + ".tech";
    const std::string table_path = prefix + "_" + which + ".slopes";
    write_tech_file(result.tech, tech_path);
    result.tables.write_file(table_path);
    std::cout << "wrote " << tech_path << " and " << table_path << '\n';

    // Round-trip sanity: a production run would load these back.
    const Tech reloaded = read_tech_file(tech_path);
    const SlopeTables tables = SlopeTables::read_file(table_path);
    std::cout << "reloaded tech '" << reloaded.name() << "', tables ok: "
              << (tables.has(TransistorType::kNEnhancement,
                             Transition::kFall)
                      ? "yes"
                      : "no")
              << '\n';
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
