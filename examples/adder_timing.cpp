// Manchester carry-chain timing: the dynamic-logic workload.
//
// Sweeps the adder width, reports per-model worst-case carry arrival,
// and shows how the precharged carry nodes are handled by both the
// analyzer (rise sources) and the simulator (initial conditions).
#include <cstdlib>
#include <iostream>

#include "compare/harness.h"
#include "delay/slope.h"
#include "timing/report.h"
#include "util/strings.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace sldm;
  const int max_bits = argc > 1 ? std::atoi(argv[1]) : 8;
  if (max_bits < 1 || max_bits > 14) {
    std::cerr << "usage: adder_timing [max_bits 1..14]\n";
    return 2;
  }
  try {
    const CompareContext& ctx = CompareContext::get(Style::kNmos);

    TextTable table({"bits", "devices", "lumped (ns)", "rc-tree (ns)",
                     "slope (ns)", "sim (ns)", "slope err%"});
    for (int bits = 1; bits <= max_bits; bits *= 2) {
      const GeneratedCircuit g = manchester_carry(Style::kNmos, bits);
      const ComparisonResult r = run_comparison(g, ctx, 1e-9);
      table.add_row({std::to_string(bits), std::to_string(r.devices),
                     format("%.3f", to_ns(r.model("lumped-rc").delay)),
                     format("%.3f", to_ns(r.model("rc-tree").delay)),
                     format("%.3f", to_ns(r.model("slope").delay)),
                     format("%.3f", to_ns(r.reference_delay)),
                     format("%+.1f", r.model("slope").error_pct)});
    }
    std::cout << "Manchester carry chain, worst-case carry ripple:\n\n"
              << table.to_string() << '\n';

    // Show the ripple structure: critical path of the widest adder.
    const GeneratedCircuit g = manchester_carry(Style::kNmos, max_bits);
    SlopeModel slope(ctx.calibration().tables);
    TimingAnalyzer an(g.netlist, ctx.tech(), slope);
    an.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
    an.run();
    if (const auto worst = an.worst_arrival(true)) {
      std::cout << "critical path, " << max_bits << "-bit chain:\n"
                << format_path(g.netlist,
                               an.critical_path(worst->node, worst->dir));
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
