// The `sldm` command-line tool: thin wrapper over src/cli.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return sldm::run_cli(args, std::cout, std::cerr);
}
