// Quickstart: build an nMOS inverter chain, calibrate the models, and
// compare all three delay models against the analog simulator.
//
// This is the smallest end-to-end tour of the library:
//   generator -> calibration -> timing analysis -> analog reference.
#include <cstdio>
#include <iostream>

#include "compare/harness.h"
#include "delay/slope.h"
#include "timing/report.h"
#include "util/strings.h"
#include "util/text_table.h"

int main() {
  using namespace sldm;
  try {
    // A calibrated context: nmos4 technology, slope tables fit against
    // the built-in analog simulator.
    const CompareContext& ctx = CompareContext::get(Style::kNmos);
    std::cout << "technology: " << ctx.tech().name()
              << "  (vdd = " << ctx.tech().vdd() << " V)\n\n";

    // A 4-stage inverter chain with fanout 2, driven by a 2 ns edge.
    const GeneratedCircuit g = inverter_chain(Style::kNmos, 4, 2);
    const Seconds input_slope = 2e-9;
    const ComparisonResult r = run_comparison(g, ctx, input_slope);

    std::cout << "circuit: " << g.name << "  (" << r.devices
              << " transistors)\n";
    std::cout << "analog reference delay: "
              << format("%.3f ns", to_ns(r.reference_delay)) << "\n\n";

    TextTable table({"model", "delay (ns)", "error vs sim"});
    for (const ModelResult& m : r.models) {
      table.add_row({m.model, format("%.3f", to_ns(m.delay)),
                     format("%+.1f%%", m.error_pct)});
    }
    std::cout << table.to_string() << '\n';

    // Show the slope model's critical path through the chain.
    SlopeModel slope(ctx.calibration().tables);
    TimingAnalyzer analyzer(g.netlist, ctx.tech(), slope);
    analyzer.add_input_event(g.input, Transition::kRise, 0.0, input_slope);
    analyzer.run();
    const auto worst = analyzer.worst_arrival(/*outputs_only=*/true);
    if (worst) {
      std::cout << "critical path (slope model):\n"
                << format_path(g.netlist,
                               analyzer.critical_path(worst->node,
                                                      worst->dir));
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
