// Barrel-shifter timing: the pass-transistor array workload that
// motivated distributed RC analysis in the paper.
//
// Builds an N x N barrel shifter, runs the analyzer with each delay
// model, prints the critical path through the array, and (for moderate
// N) cross-checks the slope model against the analog simulator.
#include <cstdlib>
#include <iostream>

#include "compare/harness.h"
#include "delay/lumped.h"
#include "delay/rctree.h"
#include "delay/slope.h"
#include "timing/report.h"
#include "util/strings.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace sldm;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 4;
  if (bits < 1 || bits > 16) {
    std::cerr << "usage: shifter_timing [bits 1..16]\n";
    return 2;
  }
  try {
    const CompareContext& ctx = CompareContext::get(Style::kNmos);
    const GeneratedCircuit g = barrel_shifter(Style::kNmos, bits);
    std::cout << "circuit: " << g.name << "  ("
              << g.netlist.device_count() << " transistors, "
              << g.netlist.node_count() << " nodes)\n\n";

    const Seconds input_slope = 1e-9;
    TextTable table({"model", "critical path arrival (ns)"});
    for (const DelayModel* model : ctx.models()) {
      TimingAnalyzer an(g.netlist, ctx.tech(), *model);
      an.add_input_event(g.input, Transition::kRise, 0.0, input_slope);
      an.run();
      const auto worst = an.worst_arrival(true);
      table.add_row({model->name(),
                     worst ? format("%.3f", to_ns(worst->time)) : "-"});
    }
    std::cout << table.to_string() << '\n';

    // Critical path under the slope model.
    SlopeModel slope(ctx.calibration().tables);
    TimingAnalyzer an(g.netlist, ctx.tech(), slope);
    an.add_input_event(g.input, Transition::kRise, 0.0, input_slope);
    an.run();
    if (const auto worst = an.worst_arrival(true)) {
      std::cout << "critical path (slope model):\n"
                << format_path(g.netlist,
                               an.critical_path(worst->node, worst->dir))
                << '\n';
    }

    if (bits <= 8) {
      const ComparisonResult r = run_comparison(g, ctx, input_slope);
      std::cout << "analog reference: "
                << format("%.3f ns", to_ns(r.reference_delay))
                << "   (slope model "
                << format("%+.1f%%", r.model("slope").error_pct) << ")\n";
    } else {
      std::cout << "(analog cross-check skipped for bits > 8)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
