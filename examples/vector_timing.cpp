// Value-aware timing: combine the switch-level logic simulator with the
// timing analyzer.
//
// Worst-case analysis assumes every pass transistor may conduct; with a
// concrete input vector, the logic simulator tells us which selects are
// actually on, and pinning those values prunes the false paths.  This
// example shows both analyses side by side on a barrel shifter.
#include <iostream>

#include "compare/harness.h"
#include "delay/slope.h"
#include "switchsim/simulator.h"
#include "timing/report.h"
#include "util/strings.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace sldm;
  const int bits = argc > 1 ? std::atoi(argv[1]) : 4;
  if (bits < 2 || bits > 8) {
    std::cerr << "usage: vector_timing [bits 2..8]\n";
    return 2;
  }
  try {
    const CompareContext& ctx = CompareContext::get(Style::kNmos);
    const GeneratedCircuit g = barrel_shifter(Style::kNmos, bits);
    std::cout << "circuit: " << g.name << "  ("
              << g.netlist.device_count() << " transistors)\n\n";

    // 1. Simulate the steady state for the vector: shift select 0
    //    active, data 0 low (about to rise).
    SwitchSimulator sim(g.netlist);
    sim.set_input(g.input, false);
    for (NodeId n : g.high_inputs) sim.set_input(n, true);
    for (NodeId n : g.low_inputs) sim.set_input(n, false);
    sim.settle();
    std::cout << "settled state: " << sim.dump() << "\n\n";

    // 2. Worst-case analysis (no pins) vs value-aware analysis (select
    //    lines pinned at their simulated values).
    SlopeModel model(ctx.calibration().tables);

    TimingAnalyzer worst(g.netlist, ctx.tech(), model);
    worst.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
    worst.run();

    AnalyzerOptions opts;
    for (const auto& [node, v] : sim.fixed_values()) {
      if (g.netlist.node(node).is_input && node != g.input) {
        opts.extract.fixed_values[node] = v;
      }
    }
    TimingAnalyzer aware(g.netlist, ctx.tech(), model, opts);
    aware.add_input_event(g.input, Transition::kRise, 0.0, 1e-9);
    aware.run();

    TextTable table({"analysis", "stages", "output arrival (ns)"});
    const auto w = worst.worst_arrival(true);
    const auto a = aware.worst_arrival(true);
    table.add_row({"worst-case (all passes may conduct)",
                   std::to_string(worst.stages().size()),
                   w ? format("%.3f", to_ns(w->time)) : "-"});
    table.add_row({"value-aware (selects pinned)",
                   std::to_string(aware.stages().size()),
                   a ? format("%.3f", to_ns(a->time)) : "-"});
    std::cout << table.to_string() << '\n';

    if (a) {
      std::cout << "value-aware critical path:\n"
                << format_path(g.netlist,
                               aware.critical_path(a->node, a->dir));
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
